"""The flight recorder: always-on bounded capture of structural events.

Metrics aggregate and spans must be enabled ahead of time; neither answers
"what was the daemon doing in the seconds before it fell over?".  The
flight recorder does: a fixed-size ring of structured events (queries with
costs, deltas, compactions, admission rejections, coalescing joins, worker
lifecycle) that is cheap enough to leave on in production — recording is
one lock acquisition and a deque append — and is dumped on demand
(``/debug/events``), on ``SIGUSR2``, and on daemon crash.

Events are plain dicts with three reserved keys — ``seq`` (monotonic
per-recorder sequence), ``wall`` (``time.time()`` at capture), ``kind`` —
plus whatever fields the call site attaches.  Field values should be
JSON-ready scalars; callers pass ``cost=QueryCost.as_dict()`` style
payloads, never live objects.

The module-level recorder (:func:`get_flight_recorder`) is shared by the
daemon, the serve layer, and the delta persistence path, so one dump
interleaves all of them in arrival order.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from .registry import get_registry

__all__ = [
    "DEFAULT_FLIGHT_CAPACITY",
    "FlightRecorder",
    "get_flight_recorder",
    "install_signal_dump",
]

#: Events retained before the oldest is evicted.
DEFAULT_FLIGHT_CAPACITY = 2048


class FlightRecorder:
    """Bounded, thread-safe ring of structured events."""

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._enabled = True
        self._counters: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def _counter(self, kind: str):
        counter = self._counters.get(kind)
        if counter is None:
            counter = get_registry().counter("repro_flight_events_total", kind=kind)
            self._counters[kind] = counter
        return counter

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, kind: str, **fields: object) -> None:
        """Append one event (dropped silently while disabled)."""
        if not self._enabled:
            return
        event: Dict[str, object] = {"kind": kind, "wall": time.time()}
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._events.append(event)
            counter = self._counter(kind)
        counter.inc()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def events(self, limit: Optional[int] = None,
               kind: Optional[str] = None) -> List[Dict[str, object]]:
        """The retained events, oldest first (optionally filtered/tailed)."""
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [event for event in out if event["kind"] == kind]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------

    def dump_json(self, limit: Optional[int] = None) -> str:
        """The ring as a JSON array (the ``/debug/events`` body)."""
        return json.dumps(self.events(limit), sort_keys=True)

    def dump_lines(self, limit: Optional[int] = None) -> str:
        """Human-oriented one-event-per-line dump (signal/crash output)."""
        events = self.events(limit)
        if not events:
            return "(flight recorder empty)"
        lines = []
        for event in events:
            extras = ", ".join(
                "%s=%s" % (key, _compact(value))
                for key, value in sorted(event.items())
                if key not in ("seq", "wall", "kind"))
            lines.append("#%-6d %.3f %-18s %s" % (
                event["seq"], event["wall"], event["kind"], extras))
        return "\n".join(lines)

    def dump_to(self, stream=None, limit: Optional[int] = None,
                reason: str = "") -> None:
        """Write a framed ``dump_lines`` report (stderr by default)."""
        stream = stream or sys.stderr
        header = "=== flight recorder dump"
        if reason:
            header += " (%s)" % reason
        header += " ==="
        stream.write("%s\n%s\n=== end flight recorder ===\n"
                     % (header, self.dump_lines(limit)))
        stream.flush()


def _compact(value: object) -> str:
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True)
    return str(value)


#: The process-wide recorder every instrumented layer shares.
_GLOBAL = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return _GLOBAL


def install_signal_dump(signum: int = signal.SIGUSR2,
                        recorder: Optional[FlightRecorder] = None) -> bool:
    """Dump the ring to stderr on ``signum`` (default ``SIGUSR2``).

    Returns ``False`` (and installs nothing) off the main thread or on
    platforms without the signal — callers need not special-case either.
    """
    target = recorder or _GLOBAL
    if threading.current_thread() is not threading.main_thread():
        return False

    def _handler(_signum, _frame):
        target.dump_to(reason="signal %d" % signum)

    try:
        signal.signal(signum, _handler)
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return False
    return True
