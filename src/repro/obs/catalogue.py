"""The metric catalogue: every family the pipeline is expected to emit.

One place names every metric family, its type, and its help string, for
three consumers: the registry (help/type text on first use), the docs
(``docs/OBSERVABILITY.md`` lists exactly these), and the ``metrics-smoke``
CI guard (which fails when an exported snapshot is missing a family).

Naming conventions
------------------
* every family is prefixed ``repro_``;
* counters end in ``_total``, byte gauges in ``_bytes``, timing
  histograms in ``_seconds``;
* label keys are lowercase: ``kind`` (Table 1 query kind), ``case``
  (rectangle case), ``scope`` (``same``/``cross`` shard), ``result``
  (``ok``/``corrupt``), ``service`` (per-``ServiceStats`` instance id),
  ``name`` (span name), ``op`` (daemon request opcode) and ``status``
  (daemon response status).
"""

from __future__ import annotations

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: ``name -> (type, help)`` for every family the instrumentation emits.
CATALOGUE = {
    # --- construction (core/builder.py) -------------------------------
    "repro_build_runs_total": (COUNTER, "Pestrie constructions performed."),
    "repro_build_groups_total": (COUNTER, "Equivalence-set groups created across all builds."),
    "repro_build_seconds": (HISTOGRAM, "Wall time of one Pestrie construction pass."),
    # --- staged pipeline (core/stages.py) -----------------------------
    "repro_stage_seconds": (HISTOGRAM, "Wall time of one staged-pipeline stage, by stage name."),
    "repro_encode_parallel_jobs": (GAUGE, "Worker processes of the most recent staged encode (1 = serial)."),
    # --- rectangle generation (core/rectangles.py + core/stages.py) ---
    "repro_rectangles_seconds": (HISTOGRAM, "Wall time of rectangle generation + Theorem 2 pruning."),
    "repro_encode_rectangles_total": (COUNTER, "Rectangles stored, by case label."),
    "repro_encode_rect_pruned_total": (COUNTER, "Candidate rectangles discarded by the Theorem 2 corner test."),
    "repro_encode_segment_inserts_total": (COUNTER, "Rectangles inserted into the pruning structure during encoding (segment tree, or the staged dedup's kept set)."),
    "repro_encode_segment_probes_total": (COUNTER, "Corner-coverage probes during encoding (one per candidate rectangle in the staged dedup)."),
    # --- serialisation (core/encoder.py) ------------------------------
    "repro_encode_runs_total": (COUNTER, "Persistent images serialised."),
    "repro_encode_seconds": (HISTOGRAM, "Wall time of persistent-image serialisation."),
    "repro_encode_bytes": (GAUGE, "Size of the most recently serialised persistent image."),
    # --- decoding (core/decoder.py) -----------------------------------
    "repro_decode_total": (COUNTER, "Persistent-image decode attempts, by result."),
    "repro_decode_seconds": (HISTOGRAM, "Wall time of one successful decode."),
    "repro_decode_bytes": (GAUGE, "Size of the most recently decoded image."),
    "repro_decode_rectangles": (GAUGE, "Rectangles in the most recently decoded image."),
    "repro_decode_intact": (GAUGE, "1 when the most recent decode verified clean, 0 after a corrupt input."),
    "repro_index_footprint_bytes": (GAUGE, "Measured memory footprint of the most recently inspected query index."),
    # --- storage layer (store/container.py) ---------------------------
    "repro_store_open_containers": (GAUGE, "Containers and mapped blobs currently open."),
    "repro_store_bytes_mapped": (GAUGE, "Bytes currently mmap-ped by open containers/blobs (in-memory images excluded)."),
    "repro_store_bytes_parsed_total": (COUNTER, "Section bytes actually parsed into Python values (lazy materialisation)."),
    "repro_store_sections_materialized_total": (COUNTER, "Sections materialised on first touch, by section name."),
    # --- delta overlay (delta/overlay.py, delta/persist.py) -----------
    "repro_delta_appends_total": (COUNTER, "DELTA records durably appended."),
    "repro_delta_append_seconds": (HISTOGRAM, "Wall time of one durable delta append."),
    "repro_delta_compactions_total": (COUNTER, "Full re-encodes folding a DELTA chain into a fresh base."),
    "repro_delta_compact_seconds": (HISTOGRAM, "Wall time of one compaction re-encode."),
    "repro_delta_records": (GAUGE, "DELTA records trailing the base after the last append/compact."),
    "repro_delta_net_ops": (GAUGE, "Net overlay edits after the last overlay build/extend."),
    "repro_delta_ratio": (GAUGE, "|delta| / base facts after the last ratio computation."),
    "repro_delta_compaction_headroom": (GAUGE, "Distance from the current delta ratio to the compaction trigger."),
    "repro_delta_overlay_extends_total": (COUNTER, "Overlay generations composed (OverlayIndex.extend / construction)."),
    "repro_delta_contested_scans_total": (COUNTER, "Deletion-contested is_alias fallbacks that scanned a base row."),
    # --- serve layer (serve/service.py, stats.py) ---------------------
    "repro_serve_queries_total": (COUNTER, "Queries served, by service instance and kind."),
    "repro_serve_batched_queries_total": (COUNTER, "Queries served through the batch APIs."),
    "repro_serve_latency_seconds": (HISTOGRAM, "Per-query service latency (batch calls contribute the per-query average)."),
    "repro_serve_cache_hits_total": (COUNTER, "Result-cache hits, by service instance."),
    "repro_serve_cache_misses_total": (COUNTER, "Result-cache misses, by service instance."),
    "repro_serve_slow_queries_total": (COUNTER, "Queries exceeding the slow-query threshold."),
    # --- result cache (serve/cache.py) --------------------------------
    "repro_cache_evictions_total": (COUNTER, "LRU result-cache capacity evictions."),
    "repro_cache_invalidated_total": (COUNTER, "Result-cache entries dropped by targeted invalidation."),
    # --- sharding (serve/sharding.py) ---------------------------------
    "repro_shard_queries_total": (COUNTER, "Sharded-index queries, by same/cross shard scope."),
    "repro_shard_swaps_total": (COUNTER, "In-place shard hot swaps."),
    # --- daemon (daemon/server.py) ------------------------------------
    "repro_daemon_connections_total": (COUNTER, "Binary-protocol connections accepted by the daemon."),
    "repro_daemon_open_connections": (GAUGE, "Binary-protocol connections currently open."),
    "repro_daemon_requests_total": (COUNTER, "Daemon request frames answered, by op and response status."),
    "repro_daemon_request_seconds": (HISTOGRAM, "Wall time from frame receipt to response body, by op."),
    "repro_daemon_queries_total": (COUNTER, "Individual Table 1 queries answered over the wire (a batch frame counts each query)."),
    "repro_daemon_rejected_total": (COUNTER, "Request frames refused by admission control (OVERLOADED)."),
    "repro_daemon_coalesced_total": (COUNTER, "Query frames answered by joining an identical in-flight computation."),
    "repro_daemon_protocol_errors_total": (COUNTER, "Malformed frames, bad lengths, and mid-frame disconnects."),
    "repro_daemon_inflight_requests": (GAUGE, "Request frames currently executing or awaiting an executor thread."),
    "repro_daemon_worker_info": (GAUGE, "1 for the serving daemon process, labelled by pre-fork worker slot (slot 0 = single-process)."),
    # --- tracing (obs/tracing.py) -------------------------------------
    "repro_trace_span_seconds": (HISTOGRAM, "Span durations recorded while tracing is enabled, by span name."),
    # --- flight recorder (obs/flight.py) ------------------------------
    "repro_flight_events_total": (COUNTER, "Flight-recorder events captured, by event kind."),
}


def metric_type(name: str) -> str:
    """The catalogued type of ``name`` (``KeyError`` for unknown families)."""
    return CATALOGUE[name][0]


def metric_help(name: str) -> str:
    return CATALOGUE[name][1]
