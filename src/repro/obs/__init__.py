"""repro.obs — process-wide telemetry: metrics, tracing, diagnostics.

Three parts, all thread-safe and shared by every layer of the pipeline:

* a **metrics registry** (:func:`get_registry`) of counters, gauges, and
  log-bucket histograms, exportable as JSON and Prometheus text
  exposition — the ``repro-pestrie metrics`` subcommand;
* **span tracing** (:data:`trace`) producing a hierarchical phase-timing
  tree over the matrix → builder → encoder → persist → decode → overlay →
  service pipeline — the ``repro-pestrie trace`` subcommand;
* **diagnostics**: the bounded :class:`SlowQueryLog` behind
  :class:`~repro.serve.AliasService`, and structure-health gauge helpers.

Telemetry observes; it never alters behaviour or persisted bytes.  The
whole layer can be switched off with :func:`set_enabled` (metrics) and is
off by default for tracing; see ``docs/OBSERVABILITY.md`` for the metric
catalogue, label conventions, and measured overhead.
"""

from .catalogue import CATALOGUE
from .diagnostics import (
    DEFAULT_SLOW_CAPACITY,
    DEFAULT_SLOW_THRESHOLD,
    SlowQuery,
    SlowQueryLog,
    record_delta_health,
    record_index_footprint,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_buckets,
    set_enabled,
)
from .tracing import Span, Tracer, trace

__all__ = [
    "CATALOGUE",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLOW_CAPACITY",
    "DEFAULT_SLOW_THRESHOLD",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "get_registry",
    "log_buckets",
    "record_delta_health",
    "record_index_footprint",
    "set_enabled",
    "trace",
]
