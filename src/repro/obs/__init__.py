"""repro.obs — process-wide telemetry: metrics, tracing, diagnostics.

Five parts, all thread-safe and shared by every layer of the pipeline:

* a **metrics registry** (:func:`get_registry`) of counters, gauges, and
  log-bucket histograms, exportable as JSON and Prometheus text
  exposition — the ``repro-pestrie metrics`` subcommand;
* **span tracing** (:data:`trace`) producing a hierarchical phase-timing
  tree over the matrix → builder → encoder → persist → decode → overlay →
  service pipeline — the ``repro-pestrie trace`` subcommand — with
  :meth:`Tracer.current`/:meth:`Tracer.propagate` carrying span context
  across thread-pool boundaries;
* **per-query cost accounting** (:func:`measure`/:class:`QueryCost`):
  a thread-local context the store/delta/serve layers feed, attributing
  bytes parsed, sections materialised, cache outcomes, replay depth, and
  the MVCC epoch to one query — ``repro-pestrie query --explain``;
* the **flight recorder** (:func:`get_flight_recorder`): an always-on
  bounded ring of structured events dumped on demand, on ``SIGUSR2``,
  and on daemon crash;
* **diagnostics**: the bounded :class:`SlowQueryLog` behind
  :class:`~repro.serve.AliasService` (entries carry epoch + cost), the
  sampling profiler behind ``/debug/profile``, and structure-health
  gauge helpers.

Telemetry observes; it never alters behaviour or persisted bytes.  The
whole layer can be switched off with :func:`set_enabled` (metrics) and is
off by default for tracing; see ``docs/OBSERVABILITY.md`` for the metric
catalogue, label conventions, and measured overhead.
"""

from .catalogue import CATALOGUE
from .cost import (
    QueryCost,
    add_parsed_bytes,
    add_section,
    current_cost,
    measure,
    note_cache_hit,
    note_cache_miss,
    note_epoch,
    note_replay_depth,
    note_shard_fanout,
)
from .diagnostics import (
    DEFAULT_SLOW_CAPACITY,
    DEFAULT_SLOW_THRESHOLD,
    SlowQuery,
    SlowQueryLog,
    record_delta_health,
    record_index_footprint,
)
from .flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    get_flight_recorder,
    install_signal_dump,
)
from .profiler import MAX_PROFILE_SECONDS, sample_profile
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_buckets,
    set_enabled,
)
from .tracing import Span, Tracer, trace

__all__ = [
    "CATALOGUE",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_FLIGHT_CAPACITY",
    "DEFAULT_SLOW_CAPACITY",
    "DEFAULT_SLOW_THRESHOLD",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MAX_PROFILE_SECONDS",
    "MetricsRegistry",
    "QueryCost",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "add_parsed_bytes",
    "add_section",
    "current_cost",
    "get_flight_recorder",
    "get_registry",
    "install_signal_dump",
    "log_buckets",
    "measure",
    "note_cache_hit",
    "note_cache_miss",
    "note_epoch",
    "note_replay_depth",
    "note_shard_fanout",
    "record_delta_health",
    "record_index_footprint",
    "sample_profile",
    "set_enabled",
    "trace",
]
