"""Per-query cost accounting: *why* was this query slow?

Aggregate metrics (PR 4) say how many bytes the store parsed and how many
cache misses the service took — across the whole process.  This module
attributes those costs to **one query**: a thread-local stack of
:class:`QueryCost` contexts that the store, overlay, and serve layers feed
while a ``measure()`` block is active.  The slow-query log and the daemon
attach the resulting breakdown to individual entries and responses, so a
60 ms outlier is explainable as "cold file: 4 sections / 1.2 MB parsed"
rather than a mystery.

Hot-path contract: when no context is active (the overwhelmingly common
case), every ``add_*``/``note_*`` helper returns after one thread-local
attribute read and a truthiness check — cheap enough to leave the hooks on
permanently, like the tracer's disabled spans.

Nesting: contexts stack.  A batch query may open one ``measure()`` while
the sharded backend opens another per shard; on exit a child folds its
counters into its parent (additively for counters, ``max`` for depth and
fan-out), so the outermost context always sees the whole call's cost.

Thread-locality: a context only observes work on the thread that entered
it.  The daemon runs each request's service work on a single executor
thread, so one ``measure()`` around the dispatch captures everything; code
that fans out across threads must measure per-thread and merge with
:meth:`QueryCost.merge`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "QueryCost",
    "measure",
    "current_cost",
    "add_parsed_bytes",
    "add_section",
    "note_cache_hit",
    "note_cache_miss",
    "note_replay_depth",
    "note_shard_fanout",
    "note_epoch",
]


class QueryCost:
    """The itemised cost of answering one query (or one batch call)."""

    __slots__ = (
        "bytes_parsed",
        "sections_materialized",
        "cache_hits",
        "cache_misses",
        "replay_depth",
        "epoch",
        "shard_fanout",
        "queries",
        "seconds",
        "coalesced",
    )

    def __init__(self) -> None:
        self.bytes_parsed = 0
        self.sections_materialized = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Overlay generations composed under the answer (0 = pure base).
        self.replay_depth = 0
        #: MVCC epoch the query was answered at (``None`` outside MVCC).
        self.epoch: Optional[int] = None
        #: Shards consulted (1 for an unsharded backend).
        self.shard_fanout = 0
        #: Queries covered by the measured call (> 1 for a batch).
        self.queries = 0
        self.seconds = 0.0
        #: True when the daemon answered by joining an in-flight twin.
        self.coalesced = False

    # ------------------------------------------------------------------

    def merge(self, child: "QueryCost") -> None:
        """Fold ``child``'s costs into this context (see module docs)."""
        self.bytes_parsed += child.bytes_parsed
        self.sections_materialized += child.sections_materialized
        self.cache_hits += child.cache_hits
        self.cache_misses += child.cache_misses
        self.queries += child.queries
        self.replay_depth = max(self.replay_depth, child.replay_depth)
        self.shard_fanout = max(self.shard_fanout, child.shard_fanout)
        if self.epoch is None:
            self.epoch = child.epoch

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (``None`` epoch omitted; key order fixed)."""
        out: Dict[str, object] = {
            "bytes_parsed": self.bytes_parsed,
            "sections_materialized": self.sections_materialized,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "replay_depth": self.replay_depth,
            "shard_fanout": self.shard_fanout,
            "queries": self.queries,
            "seconds": round(self.seconds, 6),
        }
        if self.epoch is not None:
            out["epoch"] = self.epoch
        if self.coalesced:
            out["coalesced"] = True
        return out

    def render(self) -> str:
        """Deterministic multi-line breakdown for ``--explain`` output."""
        lines = [
            "bytes_parsed            %d" % self.bytes_parsed,
            "sections_materialized   %d" % self.sections_materialized,
            "cache                   %d hit / %d miss"
            % (self.cache_hits, self.cache_misses),
            "replay_depth            %d" % self.replay_depth,
            "shard_fanout            %d" % self.shard_fanout,
            "queries                 %d" % self.queries,
            "seconds                 %.6f" % self.seconds,
        ]
        if self.epoch is not None:
            lines.insert(0, "epoch                   %d" % self.epoch)
        if self.coalesced:
            lines.append("coalesced               true")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line form for slow-query entries and flight events."""
        parts = [
            "%dB parsed" % self.bytes_parsed,
            "%d sections" % self.sections_materialized,
            "cache %d/%d" % (self.cache_hits, self.cache_hits + self.cache_misses),
            "depth %d" % self.replay_depth,
        ]
        if self.shard_fanout > 1:
            parts.append("fanout %d" % self.shard_fanout)
        if self.epoch is not None:
            parts.append("epoch %d" % self.epoch)
        return ", ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "QueryCost(%r)" % (self.as_dict(),)


_LOCAL = threading.local()


def _stack() -> List[QueryCost]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_cost() -> Optional[QueryCost]:
    """The innermost active context on this thread, or ``None``."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    return None


class _Measure:
    """Context manager pushing one :class:`QueryCost` on this thread."""

    __slots__ = ("cost",)

    def __enter__(self) -> QueryCost:
        cost = QueryCost()
        cost.seconds = time.perf_counter()
        _stack().append(cost)
        self.cost = cost
        return cost

    def __exit__(self, exc_type, exc, tb) -> bool:
        cost = self.cost
        cost.seconds = time.perf_counter() - cost.seconds
        stack = _stack()
        if stack and stack[-1] is cost:
            stack.pop()
        elif cost in stack:  # never corrupt the stack on behalf of a bug
            stack.remove(cost)
        if stack:
            stack[-1].merge(cost)
        return False


def measure() -> _Measure:
    """Open a cost context::

        with measure() as cost:
            service.is_alias(p, q)
        print(cost.render())
    """
    return _Measure()


# ----------------------------------------------------------------------
# Recording hooks — called from the store/delta/serve hot paths.  Each is
# a no-op costing one thread-local read when no context is active.
# ----------------------------------------------------------------------


def add_parsed_bytes(amount: int) -> None:
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        stack[-1].bytes_parsed += amount


def add_section() -> None:
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        stack[-1].sections_materialized += 1


def note_cache_hit() -> None:
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        stack[-1].cache_hits += 1


def note_cache_miss() -> None:
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        stack[-1].cache_misses += 1


def note_replay_depth(depth: int) -> None:
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        top = stack[-1]
        if depth > top.replay_depth:
            top.replay_depth = depth


def note_shard_fanout(count: int) -> None:
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        top = stack[-1]
        if count > top.shard_fanout:
            top.shard_fanout = count


def note_epoch(epoch: Optional[int]) -> None:
    stack = getattr(_LOCAL, "stack", None)
    if stack and epoch is not None:
        stack[-1].epoch = epoch
