"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

The paper's argument is quantitative (encode seconds, file bytes, decode
seconds, O(log n) query latency), so the reproduction keeps those numbers
observable at runtime instead of only under a hand-run benchmark.  Design
constraints, in order:

* **hot-path cost** — a counter increment is one small lock and an integer
  add; handles are created once and held, never looked up per operation;
  the whole registry can be disabled (``set_enabled(False)``), after which
  every mutation returns after a single attribute check;
* **exactness** — every mutation is locked per metric, so concurrent
  workers never lose increments (asserted by the stress test);
* **export** — one registry renders as JSON (machine diffing, benchmark
  snapshots) and as Prometheus text exposition (scraping).

Families are identified by name; series within a family by their label
set.  Help/type text comes from :mod:`repro.obs.catalogue` when the family
is catalogued, so exported metadata stays consistent everywhere.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from .catalogue import CATALOGUE, COUNTER, GAUGE, HISTOGRAM

LabelItems = Tuple[Tuple[str, str], ...]


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` log-scale bucket upper bounds: ``start * factor**i``."""
    if start <= 0 or factor <= 1 or count <= 0:
        raise ValueError("log buckets need start > 0, factor > 1, count > 0")
    return tuple(start * factor ** i for i in range(count))


#: Default latency buckets: 1 µs to ~4.2 s in ×4 steps (12 buckets).
DEFAULT_BUCKETS = log_buckets(1e-6, 4.0, 12)


class _Metric:
    """Shared plumbing: a name, a frozen label set, and a lock."""

    __slots__ = ("name", "labels", "_lock", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: LabelItems):
        self._registry = registry
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()


class Counter(_Metric):
    """Monotonic counter (resettable only through the registry/stats reset)."""

    __slots__ = ("_value",)

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; got %r" % amount)
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(_Metric):
    """A point-in-time value (last write wins)."""

    __slots__ = ("_value",)

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Metric):
    """Fixed-bucket histogram; bucket bounds are log-scale by default.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` (cumulative
    form is produced at export time, matching Prometheus semantics); the
    implicit final bucket is ``+Inf``.
    """

    __slots__ = ("bounds", "_bucket_counts", "_count", "_sum")

    def __init__(self, registry, name, labels, bounds: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, labels)
        ordered = tuple(bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram bounds must be non-empty and strictly increasing")
        self.bounds = ordered
        self._bucket_counts = [0] * (len(ordered) + 1)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Tuple[List[int], int, float]:
        """``(per-bucket counts incl. +Inf, total count, sum)`` atomically."""
        with self._lock:
            return list(self._bucket_counts), self._count, self._sum

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the nearest-rank ``q``-quantile.

        A bucketed approximation — diagnostics-grade, not the reservoir
        quantiles :class:`~repro.serve.stats.StatsSnapshot` reports.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        counts, total, _ = self.snapshot()
        if total == 0:
            return 0.0
        rank = min(total, max(1, math.ceil(q * total)))
        running = 0
        for index, bucket in enumerate(counts):
            running += bucket
            if running >= rank:
                return self.bounds[index] if index < len(self.bounds) else float("inf")
        return float("inf")

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0


_TYPE_CLASSES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """Thread-safe family/series store with JSON and Prometheus export."""

    def __init__(self, describe_catalogue: bool = False):
        self._lock = threading.Lock()
        #: name -> (type, help, {label items -> metric})
        self._families: Dict[str, Tuple[str, str, Dict[LabelItems, _Metric]]] = {}
        self.enabled = True
        if describe_catalogue:
            for name, (kind, help_text) in CATALOGUE.items():
                self.describe(name, kind, help_text)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        """Master switch: when off, every metric mutation is a no-op."""
        self.enabled = bool(enabled)

    def describe(self, name: str, kind: str, help_text: str = "") -> None:
        """Pre-register a family (it exports even before any series exists)."""
        if kind not in _TYPE_CLASSES:
            raise ValueError("unknown metric type %r" % kind)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing[0] != kind:
                    raise ValueError(
                        "metric %r already registered as a %s" % (name, existing[0])
                    )
                return
            self._families[name] = (kind, help_text, {})

    def _series(self, name: str, kind: str, labels: Dict[str, str], **extra) -> _Metric:
        items: LabelItems = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                catalogued = CATALOGUE.get(name)
                if catalogued is not None and catalogued[0] != kind:
                    raise ValueError(
                        "metric %r is catalogued as a %s" % (name, catalogued[0])
                    )
                help_text = catalogued[1] if catalogued else ""
                family = (kind, help_text, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError("metric %r already registered as a %s" % (name, family[0]))
            series = family[2].get(items)
            if series is None:
                series = _TYPE_CLASSES[kind](self, name, items, **extra)
                family[2][items] = series
            return series

    def counter(self, name: str, **labels: str) -> Counter:
        return self._series(name, COUNTER, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._series(name, GAUGE, labels)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        if buckets is None:
            return self._series(name, HISTOGRAM, labels)
        return self._series(name, HISTOGRAM, labels, bounds=buckets)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _family_items(self):
        with self._lock:
            return [
                (name, kind, help_text, list(series.items()))
                for name, (kind, help_text, series) in sorted(self._families.items())
            ]

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-ready dict: family -> {type, help, series: [...]}."""
        out: Dict[str, dict] = {}
        for name, kind, help_text, series in self._family_items():
            rendered = []
            for labels, metric in sorted(series):
                entry: Dict[str, object] = {"labels": dict(labels)}
                if kind == HISTOGRAM:
                    counts, total, total_sum = metric.snapshot()
                    entry.update(
                        buckets=list(metric.bounds),
                        bucket_counts=counts,
                        count=total,
                        sum=total_sum,
                    )
                else:
                    entry["value"] = metric.value
                rendered.append(entry)
            out[name] = {"type": kind, "help": help_text, "series": rendered}
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4 for every family."""
        lines: List[str] = []
        for name, kind, help_text, series in self._family_items():
            if help_text:
                lines.append("# HELP %s %s" % (name, _escape_help(help_text)))
            lines.append("# TYPE %s %s" % (name, kind))
            for labels, metric in sorted(series):
                if kind == HISTOGRAM:
                    counts, total, total_sum = metric.snapshot()
                    running = 0
                    for bound, bucket in zip(metric.bounds, counts):
                        running += bucket
                        lines.append("%s_bucket{%s} %d" % (
                            name, _render_labels(labels + (("le", _format_value(bound)),)),
                            running))
                    lines.append("%s_bucket{%s} %d" % (
                        name, _render_labels(labels + (("le", "+Inf"),)), total))
                    suffix = _render_labels(labels)
                    brace = "{%s}" % suffix if suffix else ""
                    lines.append("%s_sum%s %s" % (name, brace, _format_value(total_sum)))
                    lines.append("%s_count%s %d" % (name, brace, total))
                else:
                    suffix = _render_labels(labels)
                    brace = "{%s}" % suffix if suffix else ""
                    lines.append("%s%s %s" % (name, brace, _format_value(metric.value)))
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Zero every series (families and handles stay registered)."""
        for _name, _kind, _help, series in self._family_items():
            for _labels, metric in series:
                metric.reset()


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: LabelItems) -> str:
    return ",".join('%s="%s"' % (key, _escape_label_value(value))
                    for key, value in items)


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: The process-wide registry every instrumented module shares.
_GLOBAL = MetricsRegistry(describe_catalogue=True)


def get_registry() -> MetricsRegistry:
    return _GLOBAL


def set_enabled(enabled: bool) -> None:
    """Enable/disable all telemetry mutations on the global registry."""
    _GLOBAL.set_enabled(enabled)
