"""Characteristics measurement — the Figure 1 and Table 2 statistics.

Given any points-to matrix, computes the quantities the paper's empirical
study reports: the percentage of non-equivalent pointers and objects, and
the hub-degree distribution.  The absolute degree buckets of Figure 1
(e.g. "> 5000") are tied to the paper's MLoC subjects, so alongside the raw
buckets we report scale-free quantile statistics and the *pointer-mass*
concentration: the fraction of (pointer, object) incidences landing on the
top decile of objects by hub degree — the form of the hub property that
survives downscaling.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.hub import hub_degrees
from ..matrix.equivalence import object_equivalence, pointer_equivalence
from ..matrix.points_to import PointsToMatrix

#: Figure 1 hub-degree buckets (upper bounds; the last is open-ended).
DEGREE_BUCKETS: Sequence[float] = (10, 100, 1000, 5000, float("inf"))


@dataclass
class Characteristics:
    """Everything Figure 1 / Table 2 report for one subject."""

    n_pointers: int
    n_objects: int
    facts: int
    pointer_class_ratio: float
    object_class_ratio: float
    hub_bucket_fractions: List[float]
    #: Fraction of incidences on the top 10% of objects by hub degree.
    hub_mass_top_decile: float
    max_hub_degree: float
    median_hub_degree: float

    def row(self) -> Dict[str, float]:
        return {
            "#Pointers": self.n_pointers,
            "#Objects": self.n_objects,
            "#Facts": self.facts,
            "ptr classes %": 100.0 * self.pointer_class_ratio,
            "obj classes %": 100.0 * self.object_class_ratio,
            "hub mass top-10% objs": 100.0 * self.hub_mass_top_decile,
        }


def characterize(matrix: PointsToMatrix) -> Characteristics:
    """Measure the Section 2 characteristics of ``matrix``."""
    pointer_part = pointer_equivalence(matrix)
    object_part = object_equivalence(matrix)
    degrees = hub_degrees(matrix)

    buckets = [0] * len(DEGREE_BUCKETS)
    for degree in degrees:
        for index, bound in enumerate(DEGREE_BUCKETS):
            if degree <= bound:
                buckets[index] += 1
                break
    total_objects = max(matrix.n_objects, 1)

    # Pointer-mass concentration on top-decile hubs.
    pointed_by = [0] * matrix.n_objects
    for row in matrix.rows:
        for obj in row:
            pointed_by[obj] += 1
    order = sorted(range(matrix.n_objects), key=lambda obj: -degrees[obj])
    top = order[: max(1, matrix.n_objects // 10)]
    total_incidences = sum(pointed_by) or 1
    top_mass = sum(pointed_by[obj] for obj in top)

    median = statistics.median(degrees) if degrees else 0.0

    return Characteristics(
        n_pointers=matrix.n_pointers,
        n_objects=matrix.n_objects,
        facts=matrix.fact_count(),
        pointer_class_ratio=pointer_part.ratio(),
        object_class_ratio=object_part.ratio(),
        hub_bucket_fractions=[count / total_objects for count in buckets],
        hub_mass_top_decile=top_mass / total_incidences,
        max_hub_degree=max(degrees, default=0.0),
        median_hub_degree=median,
    )
