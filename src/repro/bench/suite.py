"""The evaluation suite: 12 scaled stand-ins for the paper's Table 2.

Three groups, matching the paper's experimental setup:

* **C / flow-sensitive** (samba, gs, php, postgreSQL): generated IR
  programs analysed by the flow-sensitive analysis, canonicalised via the
  ``(l, p) → p_l`` transform;
* **Java / 1-object-sensitive-with-heap-cloning stand-in** (antlr, luindex,
  bloat, chart): k=2 callsite cloning, merged to 1-callsite rows;
* **Java / geomPTA stand-in** (batik, sunflow, tomcat, fop): k=1 callsite
  cloning with heap cloning.

Sizes are scaled ~100× down from the paper's MLoC subjects so the whole
suite runs in pure Python; the *structure* (equivalence ratios, hub mass)
is re-measured per subject by the Figure 1 benchmark.  Subjects are cached
per process — building one means running a real pointer analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..analysis import context_sensitive, flow_sensitive
from ..analysis.ir import Load, Program, Store
from ..analysis.transform import (
    NamedMatrix,
    context_sensitive_to_matrix,
    flow_sensitive_to_matrix,
)
from ..matrix.points_to import PointsToMatrix
from .programs import ProgramSpec, generate_program


@dataclass(frozen=True)
class SubjectSpec:
    """One suite entry: program shape + analysis choice."""

    name: str
    language: str  # "C" or "Java"
    analysis: str  # "flow-sensitive", "2-callsite", "1-callsite"
    program: ProgramSpec


@dataclass
class Subject:
    """A built subject: the matrix plus the client query workload."""

    spec: SubjectSpec
    program: Program
    named: NamedMatrix
    #: Statement count — the scaled analogue of Table 2's LOC column.
    loc: int
    #: Matrix rows that are base pointers of loads/stores (client workload).
    base_pointers: List[int]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def matrix(self) -> PointsToMatrix:
        return self.named.matrix


def _spec(name: str, language: str, analysis: str, functions: int, stmts: int,
          types: int, seed: int, fanout: int = 3) -> SubjectSpec:
    return SubjectSpec(
        name=name,
        language=language,
        analysis=analysis,
        program=ProgramSpec(
            name=name,
            n_functions=functions,
            statements_per_function=stmts,
            n_types=types,
            seed=seed,
            call_fanout=fanout,
        ),
    )


#: The twelve subjects, ordered as in Table 2.  Sizes keep the paper's
#: relative ordering (samba largest C subject, fop largest Java one) at
#: roughly 1/100 scale.
SUITE: Tuple[SubjectSpec, ...] = (
    _spec("samba", "C", "flow-sensitive", 120, 50, types=20, seed=101),
    _spec("gs", "C", "flow-sensitive", 100, 45, types=18, seed=102),
    _spec("php", "C", "flow-sensitive", 90, 42, types=16, seed=103),
    _spec("postgreSQL", "C", "flow-sensitive", 80, 40, types=16, seed=104),
    _spec("antlr", "Java", "2-callsite", 40, 22, types=10, seed=201, fanout=2),
    _spec("luindex", "Java", "2-callsite", 36, 20, types=10, seed=202, fanout=2),
    _spec("bloat", "Java", "2-callsite", 48, 24, types=12, seed=203, fanout=2),
    _spec("chart", "Java", "2-callsite", 56, 26, types=12, seed=204, fanout=2),
    _spec("batik", "Java", "1-callsite", 80, 30, types=14, seed=301),
    _spec("sunflow", "Java", "1-callsite", 70, 28, types=14, seed=302),
    _spec("tomcat", "Java", "1-callsite", 76, 29, types=14, seed=303),
    _spec("fop", "Java", "1-callsite", 96, 34, types=16, seed=304),
)

SUBJECT_NAMES: Tuple[str, ...] = tuple(spec.name for spec in SUITE)

#: Subjects the BDD baseline is run on — the paper, too, only reports BDD
#: numbers for its four smallest (Paddle) subjects.
BDD_SUBJECTS: Tuple[str, ...] = ("antlr", "luindex", "bloat", "chart")


def _dereference_stems(program: Program) -> set:
    """Qualified names of variables used as load/store base pointers."""
    stems = set()
    for function in program.functions.values():
        for stmt in function.simple_statements():
            if isinstance(stmt, Store):
                name = stmt.target
            elif isinstance(stmt, Load):
                name = stmt.source
            else:
                continue
            if name in program.globals:
                stems.add(name)
            else:
                stems.add("%s::%s" % (function.name, name))
    return stems


def _stem_of(row_name: str) -> str:
    """Reduce a transformed row name to its ``function::variable`` stem."""
    base = row_name.split("@", 1)[0]  # strip flow-sensitive @L / @entry
    if "[" in base:  # strip context brackets: f3[12]::v2 -> f3::v2
        head, _, tail = base.partition("[")
        closing = tail.find("]::")
        if closing != -1:
            base = head + "::" + tail[closing + 3 :]
    return base


def _base_pointer_rows(named: NamedMatrix, stems: set) -> List[int]:
    rows = [
        index
        for name, index in named.pointer_index.items()
        if _stem_of(name) in stems
    ]
    rows.sort()
    return rows


def build_subject(spec: SubjectSpec) -> Subject:
    """Generate the program, run the analysis, canonicalise the matrix."""
    program = generate_program(spec.program)
    if spec.analysis == "flow-sensitive":
        named = flow_sensitive_to_matrix(flow_sensitive.analyze(program))
    elif spec.analysis == "2-callsite":
        named = context_sensitive_to_matrix(context_sensitive.analyze(program, k=2),
                                            merge_depth=1)
    elif spec.analysis == "1-callsite":
        named = context_sensitive_to_matrix(context_sensitive.analyze(program, k=1),
                                            merge_depth=1)
    else:
        raise ValueError("unknown analysis %r" % spec.analysis)
    stems = _dereference_stems(program)
    return Subject(
        spec=spec,
        program=program,
        named=named,
        loc=program.statement_count(),
        base_pointers=_base_pointer_rows(named, stems),
    )


@lru_cache(maxsize=None)
def get_subject(name: str) -> Subject:
    """Build (once per process) and return a suite subject by name."""
    for spec in SUITE:
        if spec.name == name:
            return build_subject(spec)
    raise KeyError("unknown subject %r; choose from %s" % (name, SUBJECT_NAMES))


def iter_subjects(names: Optional[Tuple[str, ...]] = None):
    """Yield built subjects, defaulting to the full suite."""
    for name in names or SUBJECT_NAMES:
        yield get_subject(name)


def suite_table() -> List[Dict[str, object]]:
    """Table 2 rows for every subject."""
    rows = []
    for subject in iter_subjects():
        rows.append(
            {
                "Program": subject.name,
                "Language": subject.spec.language,
                "Analysis": subject.spec.analysis,
                "LOC": subject.loc,
                "#Pointers": subject.matrix.n_pointers,
                "#Objects": subject.matrix.n_objects,
            }
        )
    return rows
