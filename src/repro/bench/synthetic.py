"""Synthetic points-to matrices calibrated to the paper's Section 2 study.

The paper's subjects are MLoC C and Java programs analysed by heavyweight
points-to engines we cannot rerun; what Pestrie's behaviour actually depends
on is the *structure* of the resulting matrix, which Section 2 quantifies:

* pointer equivalence classes ≈ 18.5% of pointers, object classes ≈ 83%
  (Figure 1, left);
* a heavy-tailed hub-degree distribution — most objects pointed to by a few
  pointers, a small core of hubs pointed to by very many, with 70.2% of the
  *pointer mass* concentrated on high-degree hubs (Figure 1, right).

The generator reproduces both: it samples ``n_classes`` distinct points-to
sets whose object membership follows a Zipf popularity law, then assigns
pointers to classes with a Zipf class-size law.  The `bench.metrics` module
re-measures the properties on every generated matrix (that is the Figure 1
reproduction).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..matrix.points_to import PointsToMatrix


@dataclass(frozen=True)
class SyntheticSpec:
    """Knobs of the generator, with paper-calibrated defaults."""

    n_pointers: int
    n_objects: int
    #: Distinct points-to sets as a fraction of pointers (Figure 1: 18.5%).
    pointer_class_ratio: float = 0.185
    #: Zipf exponent for object popularity (hub heavy tail).
    object_zipf: float = 0.9
    #: Zipf exponent for class sizes (equivalent-pointer clustering).
    class_zipf: float = 0.8
    #: Mean points-to set size; sizes are drawn log-normally around it.
    mean_points_to: float = 6.0
    #: Log-normal sigma of set sizes; bigger → more L-pointers.
    size_sigma: float = 1.1
    seed: int = 0


class _WeightedSampler:
    """O(log n) weighted sampling with replacement via a CDF."""

    def __init__(self, weights: Sequence[float], rng: random.Random):
        self._cdf: List[float] = []
        total = 0.0
        for weight in weights:
            total += weight
            self._cdf.append(total)
        self._total = total
        self._rng = rng

    def sample(self) -> int:
        return bisect_right(self._cdf, self._rng.random() * self._total)


def _zipf_weights(count: int, exponent: float) -> List[float]:
    return [1.0 / (rank + 1.0) ** exponent for rank in range(count)]


def synthesize(spec: SyntheticSpec) -> PointsToMatrix:
    """Generate one matrix according to ``spec`` (deterministic per seed)."""
    rng = random.Random(spec.seed)
    n_classes = max(1, int(round(spec.n_pointers * spec.pointer_class_ratio)))
    n_classes = min(n_classes, spec.n_pointers)

    object_sampler = _WeightedSampler(_zipf_weights(spec.n_objects, spec.object_zipf), rng)
    # Shuffle object identities so popularity is not correlated with id.
    object_identity = list(range(spec.n_objects))
    rng.shuffle(object_identity)

    mu = math.log(max(spec.mean_points_to, 1.0))
    class_sets: List[frozenset] = []
    for _ in range(n_classes):
        size = max(1, int(round(rng.lognormvariate(mu, spec.size_sigma))))
        size = min(size, spec.n_objects)
        chosen = set()
        attempts = 0
        while len(chosen) < size and attempts < size * 20:
            chosen.add(object_identity[object_sampler.sample()])
            attempts += 1
        class_sets.append(frozenset(chosen))

    class_sampler = _WeightedSampler(_zipf_weights(n_classes, spec.class_zipf), rng)
    matrix = PointsToMatrix(spec.n_pointers, spec.n_objects)
    # Guarantee every class is used at least once, then fill Zipf-style.
    assignments = list(range(n_classes))
    assignments.extend(class_sampler.sample() for _ in range(spec.n_pointers - n_classes))
    rng.shuffle(assignments)
    for pointer, class_id in enumerate(assignments):
        for obj in class_sets[class_id]:
            matrix.add(pointer, obj)
    return matrix


def synthesize_simple(
    n_pointers: int,
    n_objects: int,
    seed: int = 0,
    density: Optional[float] = None,
) -> PointsToMatrix:
    """A uniform random matrix (no equivalence/hub structure).

    The negative control: encoders should compress this far worse than the
    calibrated matrices, which is itself evidence the paper's properties —
    not mere sparsity — drive Pestrie's wins.
    """
    rng = random.Random(seed)
    if density is None:
        density = min(1.0, 6.0 / max(n_objects, 1))
    matrix = PointsToMatrix(n_pointers, n_objects)
    for pointer in range(n_pointers):
        for obj in range(n_objects):
            if rng.random() < density:
                matrix.add(pointer, obj)
    return matrix
