"""Client query-trace generation: realistic mixed workloads.

The paper's motivation is *query-intensive* clients (Section 8: demand
approaches fail "in query-intensive situation").  A real client does not
issue one query kind in isolation — a race detector mixes IsAlias bursts
with ListAliases sweeps; a value-flow analysis leans on ListPointedBy.
This module synthesises reproducible traces with a configurable mix, and
replays them against any backend exposing the Table 1 interface.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Query kinds and their trace encoding.
IS_ALIAS = "is_alias"
LIST_POINTS_TO = "list_points_to"
LIST_POINTED_BY = "list_pointed_by"
LIST_ALIASES = "list_aliases"

KINDS = (IS_ALIAS, LIST_POINTS_TO, LIST_POINTED_BY, LIST_ALIASES)


@dataclass(frozen=True)
class TraceSpec:
    """Mix and size of a generated query trace."""

    length: int = 10_000
    #: Relative weights per query kind; the race-detector profile default.
    mix: Tuple[float, float, float, float] = (0.70, 0.15, 0.05, 0.10)
    #: Bias toward "hot" pointers (a Zipf exponent; 0 = uniform).
    locality: float = 0.8
    seed: int = 0


@dataclass
class Trace:
    """A concrete replayable query sequence."""

    operations: List[Tuple[str, Tuple[int, ...]]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {kind: 0 for kind in KINDS}
        for kind, _ in self.operations:
            counts[kind] += 1
        return counts


def generate_trace(
    spec: TraceSpec, pointers: Sequence[int], objects: Sequence[int]
) -> Trace:
    """Build a trace over the given pointer/object id universes."""
    if not pointers or not objects:
        raise ValueError("trace generation needs non-empty id universes")
    rng = random.Random(spec.seed)
    weights = list(spec.mix)
    if len(weights) != 4 or any(w < 0 for w in weights) or not any(weights):
        raise ValueError("mix must be four non-negative weights, not all zero")

    # Zipf-permuted popularity: hot ids get picked disproportionately.
    hot_pointers = list(pointers)
    rng.shuffle(hot_pointers)
    hot_objects = list(objects)
    rng.shuffle(hot_objects)

    def pick(universe: List[int]) -> int:
        if spec.locality <= 0:
            return rng.choice(universe)
        # Inverse-CDF sampling of a truncated Zipf over ranks.
        rank = int(len(universe) * rng.random() ** (1.0 + spec.locality))
        return universe[min(rank, len(universe) - 1)]

    trace = Trace()
    kinds = rng.choices(KINDS, weights=weights, k=spec.length)
    for kind in kinds:
        if kind == IS_ALIAS:
            trace.operations.append((kind, (pick(hot_pointers), pick(hot_pointers))))
        elif kind == LIST_POINTED_BY:
            trace.operations.append((kind, (pick(hot_objects),)))
        else:
            trace.operations.append((kind, (pick(hot_pointers),)))
    return trace


def replay(trace: Trace, backend) -> int:
    """Run every operation; return a checksum so answers can be compared."""
    checksum = 0
    for kind, operands in trace.operations:
        if kind == IS_ALIAS:
            checksum += 1 if backend.is_alias(*operands) else 0
        elif kind == LIST_POINTS_TO:
            checksum += len(backend.list_points_to(*operands))
        elif kind == LIST_POINTED_BY:
            checksum += len(backend.list_pointed_by(*operands))
        else:
            checksum += len(backend.list_aliases(*operands))
    return checksum
