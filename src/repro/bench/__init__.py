"""Benchmark substrate: workload generators, suite, metrics, harness."""

from .harness import Table, geometric_mean, human_bytes, sample_pairs, timed, traced_memory
from .metrics import Characteristics, characterize
from .programs import ProgramSpec, generate_program
from .suite import (
    BDD_SUBJECTS,
    SUBJECT_NAMES,
    SUITE,
    Subject,
    SubjectSpec,
    build_subject,
    get_subject,
    iter_subjects,
    suite_table,
)
from .synthetic import SyntheticSpec, synthesize, synthesize_simple

__all__ = [
    "BDD_SUBJECTS",
    "SUBJECT_NAMES",
    "SUITE",
    "Characteristics",
    "ProgramSpec",
    "Subject",
    "SubjectSpec",
    "SyntheticSpec",
    "Table",
    "build_subject",
    "characterize",
    "generate_program",
    "geometric_mean",
    "get_subject",
    "human_bytes",
    "iter_subjects",
    "sample_pairs",
    "suite_table",
    "synthesize",
    "synthesize_simple",
    "timed",
    "traced_memory",
]
