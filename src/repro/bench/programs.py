"""Benchmark-program generator: scaled stand-ins for the Table 2 suite.

Generates random-but-deterministic IR programs with the shapes the paper's
subjects exhibit — call chains with locality, shared allocator helpers (the
factories whose sites become hubs), loops, branches, and global escape
routes.

The generator is *typed*: every variable, parameter, and allocation site
carries one of ``n_types`` abstract types and all flows (copies, calls,
loads, stores) are type-consistent, with a fixed ``cell_type`` map giving
the type stored inside each object type.  Without this, a field-insensitive
random store/load graph transitively closes into a near-dense points-to
matrix — nothing like a real C or Java subject, whose type structure keeps
value flows apart.  The types exist only in the generator; the emitted IR
is plain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..analysis.ir import (
    Alloc,
    Call,
    Copy,
    FuncRef,
    Function,
    If,
    IndirectCall,
    Load,
    Program,
    Return,
    Stmt,
    Store,
    While,
)


@dataclass(frozen=True)
class ProgramSpec:
    """Shape parameters of a generated program."""

    name: str
    n_functions: int = 40
    statements_per_function: int = 25
    n_globals: int = 8
    n_types: int = 8
    seed: int = 0
    #: How many following functions each function may call.
    call_fanout: int = 3
    branch_prob: float = 0.18
    loop_prob: float = 0.10
    #: Probability that a call goes through a function pointer (a fresh
    #: ``fp = &callee`` + ``icall fp(...)`` pair) instead of a direct call.
    indirect_call_prob: float = 0.0


class _TypedScope:
    """Variables of one function bucketed by abstract type.

    A function *uses* only a handful of types (like real code); locals
    exist for used types only.  Types outside the used set — needed when
    calling a function with foreign parameter types — resolve to the typed
    globals, modelling values fetched from shared state.
    """

    def __init__(self, rng: random.Random, spec: ProgramSpec, params: Sequence[str],
                 param_types: Sequence[int], globals_by_type: Dict[int, List[str]],
                 types_used: Sequence[int]):
        self.types_used = list(types_used)
        self._globals_by_type = globals_by_type
        self.by_type: Dict[int, List[str]] = {t: [] for t in self.types_used}
        self.locals_by_type: Dict[int, List[str]] = {t: [] for t in self.types_used}
        # Three locals per used type guarantee both sources and targets.
        index = 0
        for type_id in self.types_used:
            for _ in range(3):
                name = "v%d" % index
                index += 1
                self.by_type[type_id].append(name)
                self.locals_by_type[type_id].append(name)
        for name, type_id in zip(params, param_types):
            self.by_type.setdefault(type_id, []).append(name)
        # One visible global per used type (read access).
        for type_id in self.types_used:
            names = globals_by_type.get(type_id, ())
            if names:
                self.by_type[type_id].append(rng.choice(names))

    def source(self, rng: random.Random, type_id: int) -> str:
        candidates = self.by_type.get(type_id)
        if candidates:
            return rng.choice(candidates)
        return rng.choice(self._globals_by_type[type_id])

    def target(self, rng: random.Random, type_id: int) -> str:
        return rng.choice(self.locals_by_type[type_id])


def generate_program(spec: ProgramSpec) -> Program:
    """Build a deterministic random program from ``spec``."""
    rng = random.Random(spec.seed)
    n_types = max(1, spec.n_types)
    program = Program(entry="main")

    # The contents type of cells of each object type (a fixed "field map").
    cell_type = {t: rng.randrange(n_types) for t in range(n_types)}

    # Globals, typed round-robin; at least one per type so foreign-type
    # values are always reachable through shared state.
    n_globals = max(spec.n_globals, n_types)
    globals_by_type: Dict[int, List[str]] = {t: [] for t in range(n_types)}
    global_types: Dict[str, int] = {}
    for index in range(n_globals):
        name = "g%d" % index
        type_id = index % n_types
        program.globals.append(name)
        globals_by_type[type_id].append(name)
        global_types[name] = type_id

    # One allocator helper per type: the hub factories.
    helper_names = []
    for type_id in range(n_types):
        name = "make_t%d" % type_id
        helper_names.append(name)
        program.add_function(
            Function(
                name=name,
                params=("hint",),
                body=[Alloc(target="fresh", site="H%d" % type_id), Return(value="fresh")],
            )
        )
    helper_type = {name: type_id for type_id, name in enumerate(helper_names)}
    helper_param_types = {name: (helper_type[name],) for name in helper_names}

    # Body functions are generated back-to-front so every call target (a
    # later function or a helper) already exists with known signature.
    body_names = ["main"] + ["f%d" % index for index in range(1, spec.n_functions)]
    signatures: Dict[str, tuple] = dict(helper_param_types)
    return_types: Dict[str, int] = dict(helper_type)

    for position in range(len(body_names) - 1, -1, -1):
        name = body_names[position]
        fn_rng = random.Random((spec.seed << 20) ^ (position * 2654435761 % (1 << 31)))
        types_used = fn_rng.sample(range(n_types), k=min(n_types, 5))
        if name == "main":
            params: tuple = ()
            param_types: tuple = ()
        else:
            arity = fn_rng.randint(1, 3)
            params = tuple("a%d" % i for i in range(arity))
            param_types = tuple(fn_rng.choice(types_used) for _ in range(arity))
        signatures[name] = param_types
        return_type = fn_rng.choice(types_used)
        return_types[name] = return_type

        scope = _TypedScope(fn_rng, spec, params, param_types, globals_by_type, types_used)
        window = body_names[position + 1 : position + 1 + spec.call_fanout * 2]
        # Allocator helpers for two of the function's own types, so helper
        # sites become shared hubs across every function using that type.
        my_helpers = [helper_names[type_id] for type_id in types_used[:2]]
        callable_names = window + my_helpers

        site_counter = [0]
        site_types: Dict[str, int] = {}

        def fresh_site(type_id: int) -> str:
            site = "S%d" % site_counter[0]
            site_counter[0] += 1
            site_types[site] = type_id
            return site

        body: List[Stmt] = []
        # Prologue: ground one local per used type so flows are live.
        for type_id in types_used:
            target = scope.locals_by_type[type_id][0]
            body.append(Alloc(target=target, site=fresh_site(type_id)))

        fp_counter = [0]

        def emit_statement() -> List[Stmt]:
            roll = fn_rng.random()
            type_id = fn_rng.choice(types_used)
            if roll < 0.24:
                return [Alloc(target=scope.target(fn_rng, type_id), site=fresh_site(type_id))]
            if roll < 0.58:
                return [Copy(
                    target=scope.target(fn_rng, type_id),
                    source=scope.source(fn_rng, type_id),
                )]
            if roll < 0.68 and cell_type[type_id] in scope.locals_by_type:
                # v: cell_type[t] = *p where p: t
                return [Load(
                    target=scope.target(fn_rng, cell_type[type_id]),
                    source=scope.source(fn_rng, type_id),
                )]
            if roll < 0.76:
                # *p = q with q: cell_type[t]
                return [Store(
                    target=scope.source(fn_rng, type_id),
                    source=scope.source(fn_rng, cell_type[type_id]),
                )]
            if roll < 0.80:
                candidates = globals_by_type[type_id]
                if candidates:
                    return [Copy(
                        target=fn_rng.choice(candidates),
                        source=scope.source(fn_rng, type_id),
                    )]
                return [Copy(
                    target=scope.target(fn_rng, type_id),
                    source=scope.source(fn_rng, type_id),
                )]
            callee = fn_rng.choice(callable_names)
            args = tuple(scope.source(fn_rng, t) for t in signatures[callee])
            target_type = return_types[callee]
            target = (
                scope.target(fn_rng, target_type)
                if target_type in scope.locals_by_type
                else None
            )
            if fn_rng.random() < spec.indirect_call_prob:
                # Route through a fresh function pointer: fp = &f; icall fp.
                pointer = "fp%d" % fp_counter[0]
                fp_counter[0] += 1
                return [
                    FuncRef(target=pointer, func=callee),
                    IndirectCall(target=target, pointer=pointer, args=args),
                ]
            return [Call(target=target, callee=callee, args=args)]

        def emit_block(budget: int, depth: int) -> List[Stmt]:
            """Emit statements consuming exactly ``budget`` simple slots."""
            block: List[Stmt] = []
            remaining = budget
            while remaining > 0:
                roll = fn_rng.random()
                if depth < 2 and remaining >= 4 and roll < spec.branch_prob:
                    inner = max(1, remaining // 4)
                    block.append(
                        If(
                            then_body=emit_block(inner, depth + 1),
                            else_body=emit_block(inner, depth + 1),
                        )
                    )
                    remaining -= 2 * inner
                elif depth < 2 and remaining >= 3 and roll < spec.branch_prob + spec.loop_prob:
                    inner = max(1, remaining // 4)
                    block.append(While(body=emit_block(inner, depth + 1)))
                    remaining -= inner
                else:
                    statements = emit_statement()
                    block.extend(statements)
                    remaining -= len(statements)
            return block

        body.extend(emit_block(spec.statements_per_function, 0))
        body.append(Return(value=scope.target(fn_rng, return_type)))
        program.add_function(Function(name=name, params=params, body=body))

    program.validate()
    return program
