"""Measurement harness: timing, sizes, memory, and paper-style tables.

Shared by every benchmark module so that all tables come out in a uniform
format and rows can be diffed against the paper's numbers in
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence


@dataclass
class Measurement:
    """One timed call: wall-clock seconds and an optional result payload."""

    seconds: float
    result: object = None


def timed(fn: Callable[[], object]) -> Measurement:
    """Run ``fn`` once under a wall clock."""
    start = time.perf_counter()
    result = fn()
    return Measurement(seconds=time.perf_counter() - start, result=result)


@contextmanager
def traced_memory():
    """Peak-memory measurement context; yields a dict filled on exit."""
    tracemalloc.start()
    stats: Dict[str, int] = {}
    try:
        yield stats
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        stats["peak_bytes"] = peak


@dataclass
class Table:
    """A printable results table with a title and ordered columns."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    note: Optional[str] = None

    def add(self, **values: object) -> None:
        self.rows.append(values)

    def render(self) -> str:
        widths = {column: len(column) for column in self.columns}
        formatted_rows = []
        for row in self.rows:
            formatted = {}
            for column in self.columns:
                value = row.get(column, "")
                formatted[column] = _format_cell(value)
                widths[column] = max(widths[column], len(formatted[column]))
            formatted_rows.append(formatted)
        lines = ["", "== %s ==" % self.title]
        header = "  ".join(column.ljust(widths[column]) for column in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for formatted in formatted_rows:
            lines.append(
                "  ".join(formatted[column].ljust(widths[column]) for column in self.columns)
            )
        if self.note:
            lines.append(self.note)
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return "%.1f" % value
        if abs(value) >= 0.01:
            return "%.3f" % value
        return "%.2e" % value
    return str(value)


def geometric_mean(values: Iterable[float]) -> float:
    """The paper reports ratios by geometric mean."""
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def human_bytes(size: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024 or unit == "GB":
            return "%.1f%s" % (size, unit)
        size /= 1024.0
    return "%.1fGB" % size


def sample_pairs(items: Sequence[int], limit: int) -> List[tuple]:
    """A deterministic subsample of item pairs, capped at ``limit``.

    Enumerating all ``O(n²)`` base-pointer pairs is the paper's IsAlias
    client; at our scale we stride-sample the pair space instead of
    truncating it, so the workload stays representative.
    """
    n = len(items)
    total = n * (n - 1) // 2
    if total <= limit:
        return [(items[i], items[j]) for i in range(n) for j in range(i + 1, n)]
    stride = max(1, total // limit)
    pairs = []
    index = 0
    for i in range(n):
        for j in range(i + 1, n):
            if index % stride == 0:
                pairs.append((items[i], items[j]))
                if len(pairs) >= limit:
                    return pairs
            index += 1
    return pairs
