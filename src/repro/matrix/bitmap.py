"""Sparse bitmap: a from-scratch port of GCC's linked-block bitmap.

The paper's bitmap baseline (Sections 2.1 and 7) uses the sparse bitmap
library shipped with GCC: a sorted singly linked list of fixed-width bit
blocks, each holding ``BITS_PER_BLOCK`` bits starting at a multiple of the
block width.  The representation is compact for clustered bit sets and
supports fast union/intersection by merging the two block lists, but
membership testing must scan the list — the ``O(n)`` behaviour the paper
contrasts with Pestrie's ``O(log n)`` queries.

We reproduce that data structure faithfully, including the "last accessed
block" cursor GCC keeps to make sequential probes cheap.  Block payloads are
Python integers used as fixed-width bit fields.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

#: Bits per block.  The paper uses GCC's default of 128 bits per sparse
#: bitmap block and reports it optimal in their evaluation (Section 7).
BITS_PER_BLOCK = 128

_BLOCK_MASK = (1 << BITS_PER_BLOCK) - 1


class _Block:
    """One block of ``BITS_PER_BLOCK`` bits starting at ``index * BITS_PER_BLOCK``."""

    __slots__ = ("index", "bits", "next")

    def __init__(self, index: int, bits: int = 0, nxt: Optional["_Block"] = None):
        self.index = index
        self.bits = bits
        self.next = nxt


class SparseBitmap:
    """A sorted linked list of bit blocks over non-negative integers.

    Supports the set operations the encoders need: membership, insertion,
    deletion, union, intersection, difference, equality, iteration, and
    population count.  Semantically equivalent to ``set[int]`` restricted to
    non-negative elements (property-tested against it).
    """

    __slots__ = ("_head", "_cursor")

    def __init__(self, items: Optional[Iterable[int]] = None):
        self._head: Optional[_Block] = None
        #: Last block touched by a point operation; GCC keeps the same
        #: cursor so that sequential bit probes do not rescan the list.
        self._cursor: Optional[_Block] = None
        if items is not None:
            for item in items:
                self.add(item)

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def _find_block(self, index: int) -> Optional[_Block]:
        """Return the block with the given index, or ``None``.

        Starts from the cursor when it does not overshoot the target, which
        makes ascending probe sequences linear overall.
        """
        block = self._head
        cursor = self._cursor
        if cursor is not None and cursor.index <= index:
            block = cursor
        while block is not None and block.index < index:
            block = block.next
        if block is not None and block.index == index:
            self._cursor = block
            return block
        return None

    def add(self, element: int) -> None:
        """Set one bit."""
        if element < 0:
            raise ValueError("sparse bitmaps hold non-negative elements, got %d" % element)
        index, offset = divmod(element, BITS_PER_BLOCK)
        prev = None
        block = self._head
        cursor = self._cursor
        if cursor is not None and cursor.index <= index:
            # Safe to fast-forward: the cursor block is a list node at or
            # before the target, so ``prev`` stays the node preceding
            # ``block`` (or the cursor itself once we step past it).
            prev = None if cursor.index == index else cursor
            block = cursor
        while block is not None and block.index < index:
            prev = block
            block = block.next
        if block is not None and block.index == index:
            block.bits |= 1 << offset
            self._cursor = block
            return
        new_block = _Block(index, 1 << offset, block)
        if prev is None:
            self._head = new_block
        else:
            prev.next = new_block
        self._cursor = new_block

    def discard(self, element: int) -> None:
        """Clear one bit if present."""
        if element < 0:
            return
        index, offset = divmod(element, BITS_PER_BLOCK)
        prev = None
        block = self._head
        while block is not None and block.index < index:
            prev = block
            block = block.next
        if block is None or block.index != index:
            return
        block.bits &= ~(1 << offset)
        if block.bits == 0:
            if prev is None:
                self._head = block.next
            else:
                prev.next = block.next
            self._cursor = None

    def __contains__(self, element: int) -> bool:
        if element < 0:
            return False
        index, offset = divmod(element, BITS_PER_BLOCK)
        block = self._find_block(index)
        return block is not None and bool(block.bits >> offset & 1)

    # ------------------------------------------------------------------
    # Whole-set operations
    # ------------------------------------------------------------------

    def _blocks(self) -> Iterator[_Block]:
        block = self._head
        while block is not None:
            yield block
            block = block.next

    def __iter__(self) -> Iterator[int]:
        """Yield set elements in ascending order."""
        for block in self._blocks():
            base = block.index * BITS_PER_BLOCK
            bits = block.bits
            while bits:
                low = bits & -bits
                yield base + low.bit_length() - 1
                bits ^= low

    def __len__(self) -> int:
        return sum(bin(block.bits).count("1") for block in self._blocks())

    def __bool__(self) -> bool:
        return self._head is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseBitmap):
            return NotImplemented
        a, b = self._head, other._head
        while a is not None and b is not None:
            if a.index != b.index or a.bits != b.bits:
                return False
            a, b = a.next, b.next
        return a is None and b is None

    def __hash__(self) -> int:
        return hash(tuple((block.index, block.bits) for block in self._blocks()))

    def copy(self) -> "SparseBitmap":
        result = SparseBitmap()
        tail = None
        for block in self._blocks():
            new_block = _Block(block.index, block.bits)
            if tail is None:
                result._head = new_block
            else:
                tail.next = new_block
            tail = new_block
        return result

    def union_update(self, other: "SparseBitmap") -> bool:
        """In-place union; return ``True`` when any bit changed.

        The changed-flag is what worklist points-to solvers key on.
        """
        changed = False
        dummy = _Block(-1, 0, self._head)
        prev = dummy
        a, b = self._head, other._head
        while b is not None:
            if a is None or a.index > b.index:
                new_block = _Block(b.index, b.bits, a)
                prev.next = new_block
                prev = new_block
                b = b.next
                changed = True
            elif a.index < b.index:
                prev = a
                a = a.next
            else:
                merged = a.bits | b.bits
                if merged != a.bits:
                    a.bits = merged
                    changed = True
                prev = a
                a = a.next
                b = b.next
        self._head = dummy.next
        if changed:
            self._cursor = None
        return changed

    def intersection_update(self, other: "SparseBitmap") -> bool:
        """In-place intersection; return ``True`` when any bit changed."""
        changed = False
        dummy = _Block(-1, 0, self._head)
        prev = dummy
        a, b = self._head, other._head
        while a is not None:
            if b is None or a.index < b.index:
                prev.next = a.next
                a = a.next
                changed = True
            elif a.index > b.index:
                b = b.next
            else:
                merged = a.bits & b.bits
                if merged != a.bits:
                    a.bits = merged
                    changed = True
                if merged == 0:
                    prev.next = a.next
                else:
                    prev = a
                a = a.next
                b = b.next
        self._head = dummy.next
        self._cursor = None
        return changed

    def difference_update(self, other: "SparseBitmap") -> bool:
        """In-place difference; return ``True`` when any bit changed."""
        changed = False
        dummy = _Block(-1, 0, self._head)
        prev = dummy
        a, b = self._head, other._head
        while a is not None and b is not None:
            if a.index < b.index:
                prev = a
                a = a.next
            elif a.index > b.index:
                b = b.next
            else:
                merged = a.bits & ~b.bits
                if merged != a.bits:
                    a.bits = merged
                    changed = True
                if merged == 0:
                    prev.next = a.next
                else:
                    prev = a
                a = a.next
                b = b.next
        self._head = dummy.next
        self._cursor = None
        return changed

    def __or__(self, other: "SparseBitmap") -> "SparseBitmap":
        result = self.copy()
        result.union_update(other)
        return result

    def __and__(self, other: "SparseBitmap") -> "SparseBitmap":
        result = self.copy()
        result.intersection_update(other)
        return result

    def __sub__(self, other: "SparseBitmap") -> "SparseBitmap":
        result = self.copy()
        result.difference_update(other)
        return result

    def intersects(self, other: "SparseBitmap") -> bool:
        """True when the two sets share any element.

        This is the demand-driven ``IsAlias`` primitive: intersect the two
        points-to sets and test for non-emptiness, without materialising the
        intersection.
        """
        a, b = self._head, other._head
        while a is not None and b is not None:
            if a.index < b.index:
                a = a.next
            elif a.index > b.index:
                b = b.next
            else:
                if a.bits & b.bits:
                    return True
                a = a.next
                b = b.next
        return False

    def issubset(self, other: "SparseBitmap") -> bool:
        a, b = self._head, other._head
        while a is not None:
            if b is None or b.index > a.index:
                return False
            if b.index < a.index:
                b = b.next
                continue
            if a.bits & ~b.bits:
                return False
            a, b = a.next, b.next
        return True

    # ------------------------------------------------------------------
    # Serialisation helpers (used by the BitP persistent format)
    # ------------------------------------------------------------------

    def block_count(self) -> int:
        """Number of allocated blocks (the BitP size accounting unit)."""
        return sum(1 for _ in self._blocks())

    def to_block_pairs(self) -> Iterator[tuple[int, int]]:
        """Yield ``(block_index, payload)`` pairs in ascending order."""
        for block in self._blocks():
            yield block.index, block.bits & _BLOCK_MASK

    @classmethod
    def from_block_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "SparseBitmap":
        """Rebuild a bitmap from ascending ``(block_index, payload)`` pairs."""
        result = cls()
        tail = None
        last_index = -1
        for index, bits in pairs:
            if index <= last_index:
                raise ValueError("block indices must be strictly ascending")
            if bits == 0:
                continue
            last_index = index
            new_block = _Block(index, bits & _BLOCK_MASK)
            if tail is None:
                result._head = new_block
            else:
                tail.next = new_block
            tail = new_block
        return result

    def __repr__(self) -> str:
        preview = list(self)
        if len(preview) > 8:
            shown = ", ".join(map(str, preview[:8]))
            return "SparseBitmap({%s, ... %d elements})" % (shown, len(preview))
        return "SparseBitmap({%s})" % ", ".join(map(str, preview))
