"""The normalised points-to matrix representation (Section 2 of the paper).

Every pointer-analysis result handled by this library is first canonicalised
into a boolean *points-to matrix* ``PM`` where ``PM[p][o] = 1`` means pointer
``p`` may point to object ``o``.  Rows are sparse bitmaps.  The transpose
``PMT`` (pointed-by matrix) and the alias matrix ``AM = PM · PMᵀ`` are derived
on demand; ``AM[p][q] = 1`` iff the points-to sets of ``p`` and ``q``
intersect.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .bitmap import SparseBitmap


class PointsToMatrix:
    """A pointers × objects boolean matrix with sparse bitmap rows.

    Pointers and objects are dense integer ids ``0..n_pointers-1`` and
    ``0..n_objects-1``.  Optional name tables keep the mapping back to
    source-level entities (Section 6.2's variable correlation).
    """

    def __init__(
        self,
        n_pointers: int,
        n_objects: int,
        pointer_names: Optional[Sequence[str]] = None,
        object_names: Optional[Sequence[str]] = None,
    ):
        if n_pointers < 0 or n_objects < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if pointer_names is not None and len(pointer_names) != n_pointers:
            raise ValueError("pointer name table does not match n_pointers")
        if object_names is not None and len(object_names) != n_objects:
            raise ValueError("object name table does not match n_objects")
        self.n_pointers = n_pointers
        self.n_objects = n_objects
        self.rows: List[SparseBitmap] = [SparseBitmap() for _ in range(n_pointers)]
        self.pointer_names = list(pointer_names) if pointer_names is not None else None
        self.object_names = list(object_names) if object_names is not None else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        n_pointers: int,
        n_objects: int,
        pairs: Iterable[Tuple[int, int]],
        pointer_names: Optional[Sequence[str]] = None,
        object_names: Optional[Sequence[str]] = None,
    ) -> "PointsToMatrix":
        """Build a matrix from an iterable of ``(pointer, object)`` facts."""
        matrix = cls(n_pointers, n_objects, pointer_names, object_names)
        for pointer, obj in pairs:
            matrix.add(pointer, obj)
        return matrix

    @classmethod
    def from_rows(cls, rows: Sequence[Iterable[int]], n_objects: int) -> "PointsToMatrix":
        """Build a matrix from per-pointer object id iterables."""
        matrix = cls(len(rows), n_objects)
        for pointer, objects in enumerate(rows):
            for obj in objects:
                matrix.add(pointer, obj)
        return matrix

    def add(self, pointer: int, obj: int) -> None:
        """Record the fact *pointer may point to obj*."""
        if not 0 <= pointer < self.n_pointers:
            raise IndexError("pointer id %d out of range [0, %d)" % (pointer, self.n_pointers))
        if not 0 <= obj < self.n_objects:
            raise IndexError("object id %d out of range [0, %d)" % (obj, self.n_objects))
        self.rows[pointer].add(obj)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def points_to(self, pointer: int) -> SparseBitmap:
        """The points-to set ``PM[p]`` (the live bitmap, not a copy)."""
        return self.rows[pointer]

    def has(self, pointer: int, obj: int) -> bool:
        return obj in self.rows[pointer]

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate all ``(pointer, object)`` facts in row-major order."""
        for pointer, row in enumerate(self.rows):
            for obj in row:
                yield pointer, obj

    def fact_count(self) -> int:
        """Total number of points-to facts (matrix population count)."""
        return sum(len(row) for row in self.rows)

    def density(self) -> float:
        """Fraction of set cells; 0.0 for a degenerate empty matrix."""
        cells = self.n_pointers * self.n_objects
        return self.fact_count() / cells if cells else 0.0

    # ------------------------------------------------------------------
    # Derived matrices
    # ------------------------------------------------------------------

    def transpose(self) -> "PointsToMatrix":
        """The pointed-by matrix ``PMT`` (objects × pointers)."""
        transposed = PointsToMatrix(
            self.n_objects,
            self.n_pointers,
            pointer_names=self.object_names,
            object_names=self.pointer_names,
        )
        for pointer, row in enumerate(self.rows):
            for obj in row:
                transposed.rows[obj].add(pointer)
        return transposed

    def alias_matrix(self) -> "PointsToMatrix":
        """The alias matrix ``AM = PM · PMᵀ`` (pointers × pointers).

        Computed the way the paper's BitP encoder does (Section 7.1.2): the
        alias set of ``p`` is the union of the pointed-by rows ``PMT[o]``
        over all ``o`` that ``p`` points to.  Equivalent pointers share one
        alias row (computed once and aliased into every member's slot).
        """
        transposed = self.transpose()
        alias = PointsToMatrix(self.n_pointers, self.n_pointers)
        by_content: Dict[SparseBitmap, SparseBitmap] = {}
        for pointer, row in enumerate(self.rows):
            alias_row = by_content.get(row)
            if alias_row is None:
                alias_row = SparseBitmap()
                for obj in row:
                    alias_row.union_update(transposed.rows[obj])
                by_content[row] = alias_row
            alias.rows[pointer] = alias_row
        return alias

    # ------------------------------------------------------------------
    # Reference (oracle) query implementations
    # ------------------------------------------------------------------

    def is_alias(self, p: int, q: int) -> bool:
        """Oracle IsAlias: points-to set intersection is non-empty."""
        return self.rows[p].intersects(self.rows[q])

    def list_points_to(self, p: int) -> List[int]:
        """Oracle ListPointsTo."""
        return list(self.rows[p])

    def list_pointed_by(self, obj: int) -> List[int]:
        """Oracle ListPointedBy (linear scan; the persistent index is fast)."""
        return [p for p, row in enumerate(self.rows) if obj in row]

    def list_aliases(self, p: int) -> List[int]:
        """Oracle ListAliases: every q != p whose points-to set meets p's."""
        mine = self.rows[p]
        return [q for q in range(self.n_pointers) if q != p and mine.intersects(self.rows[q])]

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PointsToMatrix):
            return NotImplemented
        return (
            self.n_pointers == other.n_pointers
            and self.n_objects == other.n_objects
            and self.rows == other.rows
        )

    def __hash__(self) -> int:  # pragma: no cover - matrices are not dict keys
        raise TypeError("PointsToMatrix is mutable and unhashable")

    def __repr__(self) -> str:
        return "PointsToMatrix(%d pointers, %d objects, %d facts)" % (
            self.n_pointers,
            self.n_objects,
            self.fact_count(),
        )


def dedup_rows(matrix: PointsToMatrix) -> Dict[SparseBitmap, List[int]]:
    """Group row indices by identical row content (equivalence detection)."""
    groups: Dict[SparseBitmap, List[int]] = {}
    for index, row in enumerate(matrix.rows):
        groups.setdefault(row, []).append(index)
    return groups
