"""Equivalence-class detection over points-to matrices (Section 2.1).

Two pointers are *equivalent* when their points-to sets are identical; two
objects are equivalent when their pointed-by sets are identical.  The paper
measures that, even for precise analyses, pointer classes average 18.5% of
the pointer count and object classes 83% (Figure 1), and the BitP encoder
exploits this by storing one representative row per class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .bitmap import SparseBitmap
from .points_to import PointsToMatrix


@dataclass
class EquivalencePartition:
    """A partition of ``0..n-1`` into classes of identical rows.

    ``class_of[i]`` is the class id of row ``i``; ``members[c]`` lists the
    rows in class ``c``; ``representative[c]`` is the smallest member, whose
    row stands in for the whole class in merged encodings.
    """

    class_of: List[int]
    members: List[List[int]] = field(repr=False)

    @property
    def n_classes(self) -> int:
        return len(self.members)

    @property
    def representative(self) -> List[int]:
        return [group[0] for group in self.members]

    def ratio(self) -> float:
        """Classes as a fraction of rows — Figure 1's "non-equivalent" metric."""
        return self.n_classes / len(self.class_of) if self.class_of else 0.0


def partition_rows(matrix: PointsToMatrix) -> EquivalencePartition:
    """Partition the matrix rows into identical-content classes.

    Class ids are assigned in order of first appearance, so the partition is
    deterministic for a given matrix.
    """
    index_of: Dict[SparseBitmap, int] = {}
    class_of: List[int] = []
    members: List[List[int]] = []
    for row_id, row in enumerate(matrix.rows):
        class_id = index_of.get(row)
        if class_id is None:
            class_id = len(members)
            index_of[row] = class_id
            members.append([])
        class_of.append(class_id)
        members[class_id].append(row_id)
    return EquivalencePartition(class_of=class_of, members=members)


def pointer_equivalence(matrix: PointsToMatrix) -> EquivalencePartition:
    """Equivalent pointers: identical points-to sets."""
    return partition_rows(matrix)


def object_equivalence(matrix: PointsToMatrix) -> EquivalencePartition:
    """Equivalent objects: identical pointed-by sets."""
    return partition_rows(matrix.transpose())
