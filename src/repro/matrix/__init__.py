"""Matrix substrate: sparse bitmaps, points-to matrices, equivalence classes."""

from .bitmap import BITS_PER_BLOCK, SparseBitmap
from .equivalence import (
    EquivalencePartition,
    object_equivalence,
    partition_rows,
    pointer_equivalence,
)
from .points_to import PointsToMatrix, dedup_rows

__all__ = [
    "BITS_PER_BLOCK",
    "SparseBitmap",
    "PointsToMatrix",
    "dedup_rows",
    "EquivalencePartition",
    "partition_rows",
    "pointer_equivalence",
    "object_equivalence",
]
