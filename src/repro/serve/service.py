"""The alias query service: a thread-safe, instrumented query front-end.

:class:`AliasService` fronts one or more loaded query indexes and is what
a long-running process (an IDE daemon, a CI bot, an analysis server)
should talk to instead of a raw :class:`PestrieIndex`:

* **thread safety** — the underlying query structures are immutable after
  decode, and the service's own mutable state (result cache, statistics)
  is individually locked, so any number of worker threads may query one
  service concurrently;
* **batch APIs** — ``is_alias_batch`` / ``list_aliases_many`` /
  ``points_to_batch`` deduplicate repeated queries, sort the remainder by
  ptList column so consecutive lookups share slab searches, and pay the
  instrumentation cost once per call instead of once per query;
* **caching** — a bounded LRU holds recent answers, valid until
  :meth:`~AliasService.apply_delta` swaps the backend (which invalidates
  exactly the entries the delta could have changed);
* **live updates** — :meth:`~AliasService.apply_delta` hot-swaps the
  backend for a delta-extended one without pausing readers: in-flight
  queries finish against whichever backend they captured, and the cache's
  epoch guard keeps their answers from being cached stale;
* **instrumentation** — per-query-type counters, cache hit rate, and
  p50/p95 latencies, surfaced through :meth:`stats` and the
  ``repro-pestrie serve-stats`` CLI subcommand.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.query import PestrieIndex
from ..delta import (
    DeltaLog,
    OverlayIndex,
    VersionUnavailableError,
    VersionedOverlay,
    load_versions,
)
from ..obs import DEFAULT_SLOW_CAPACITY, DEFAULT_SLOW_THRESHOLD, SlowQuery, SlowQueryLog
from ..obs.cost import QueryCost, current_cost, measure, note_cache_hit
from ..obs.tracing import trace
from .cache import LRUCache
from .sharding import ShardedIndex
from .stats import DEFAULT_WINDOW, ServiceStats, StatsSnapshot

_MISS = object()


def _fill_cost(cost: QueryCost, backend, epoch: int, hits: int, misses: int,
               queries: int) -> None:
    """Stamp the backend-shape costs a measured block can't observe itself.

    Called inside the ``measure()`` block so a surrounding context (the
    daemon's per-request one) inherits the values through the exit merge.
    The byte/section counters arrive separately via the store layer's
    hooks; this fills in what only the service knows: the cache outcome,
    the epoch answered at, and the backend's replay depth / shard fan-out.
    """
    cost.cache_hits += hits
    cost.cache_misses += misses
    cost.queries = queries
    cost.epoch = epoch
    depth = getattr(backend, "generation", 0)
    if depth > cost.replay_depth:
        cost.replay_depth = depth
    fanout = getattr(backend, "shard_count", 1)
    if fanout > cost.shard_fanout:
        cost.shard_fanout = fanout


class AliasService:
    """Serve Table 1 queries from one or more decoded Pestrie indexes.

    ``backend`` is anything speaking the Table 1 protocol — a
    :class:`PestrieIndex`, a :class:`ShardedIndex`, or a compatible object
    (its optional ``is_alias_batch`` / ``column_of`` methods are used when
    present).  Use the classmethods to build one from indexes or files.
    """

    def __init__(self, backend, cache_size: int = 4096,
                 stats_window: int = DEFAULT_WINDOW,
                 slow_query_threshold: Optional[float] = DEFAULT_SLOW_THRESHOLD,
                 slow_log_capacity: int = DEFAULT_SLOW_CAPACITY):
        self._backend = backend
        self._cache = LRUCache(cache_size)
        self._stats = ServiceStats(window=stats_window)
        # Slow-query diagnostics: one float compare per query while quiet.
        # ``slow_query_threshold=None`` disables capture entirely.
        self._slow = SlowQueryLog(threshold=slow_query_threshold,
                                  capacity=slow_log_capacity,
                                  service=self._stats.service)
        self._column_of = getattr(backend, "column_of", None)
        # Serialises writers (apply_delta); readers never take it.
        self._swap_lock = threading.Lock()
        # MVCC state: every apply_delta stamps a new version, and every
        # superseded backend stays reachable (immutable, structure-shared)
        # so as_of() can pin it.  A service built from a versioned file
        # additionally carries the file's own epoch history.
        self._version = 0
        self._version_floor = 0
        self._history: Dict[int, object] = {0: backend}
        self._versioned: Optional[VersionedOverlay] = None

    @classmethod
    def from_index(cls, index: PestrieIndex, **options) -> "AliasService":
        return cls(index, **options)

    @classmethod
    def from_indexes(cls, indexes: Sequence[PestrieIndex], **options) -> "AliasService":
        """Front several indexes, sharded by pointer-id range (stacked in order)."""
        if len(indexes) == 1:
            return cls(indexes[0], **options)
        return cls(ShardedIndex(indexes), **options)

    @classmethod
    def from_files(cls, paths: Sequence[str], mode: str = "ptlist",
                   lazy: bool = False, **options) -> "AliasService":
        """Serve one or more persistent files (``lazy=True`` defers decode
        of each shard to the first query routed to it).

        A single ``PESTRIE3``/``PESTRIE4`` file is opened through the
        versioned loader: the service starts at the file's epoch head with
        the whole on-disk version history answerable via :meth:`as_of`.
        Sharded (multi-file) services start at version 0 with in-memory
        history only.
        """
        from ..core.pipeline import load_index

        versioned: Optional[VersionedOverlay] = None
        if len(paths) == 1:
            if _is_delta_capable(paths[0]):
                versioned = load_versions(paths[0], mode=mode, lazy=lazy)
                backend = versioned.head_overlay()
            else:
                backend = load_index(paths[0], mode=mode, lazy=lazy)
        else:
            backend = ShardedIndex.from_files(paths, mode=mode, lazy=lazy)
        try:
            service = cls(backend, **options)
            if versioned is not None:
                service._versioned = versioned
                service._version = versioned.head
                service._version_floor = versioned.floor
                service._history = {versioned.head: backend}
            return service
        except BaseException:
            # The service never owned the backend: close the mappings we
            # just opened instead of leaking them (a close failure must not
            # mask the constructor's error).
            close = getattr(versioned if versioned is not None else backend,
                            "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def backend(self):
        return self._backend

    @property
    def n_pointers(self) -> int:
        return self._backend.n_pointers

    @property
    def n_objects(self) -> int:
        return self._backend.n_objects

    def stats(self) -> StatsSnapshot:
        return self._stats.snapshot()

    def reset_stats(self) -> None:
        self._stats.reset()
        self._slow.clear()

    @property
    def slow_query_log(self) -> SlowQueryLog:
        return self._slow

    def slow_queries(self) -> List[SlowQuery]:
        """The most recent queries over the slow threshold, oldest first."""
        return self._slow.entries()

    def set_slow_query_threshold(self, seconds: Optional[float]) -> None:
        """Change (or ``None``-disable) the slow-query capture threshold."""
        if seconds is not None and seconds < 0:
            raise ValueError("slow-query threshold must be non-negative")
        self._slow.threshold = seconds

    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()

    def close(self) -> None:
        """Release the backend's mapped resources, if it holds any.

        Lazy (mmap-backed) backends free their containers; eager backends
        and overlays without a ``close`` are a no-op.  The service object
        itself stays constructed — queries after close fail with
        ``ContainerClosedError`` from the backend, not with attribute
        errors from a half-torn-down service.
        """
        if self._versioned is not None:
            self._versioned.close()
            return
        close = getattr(self._backend, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------

    def apply_delta(self, log: DeltaLog) -> int:
        """Apply an edit script to the live service; readers never pause.

        The backend is swapped for a delta-extended one (an
        :class:`~repro.delta.OverlayIndex` over the current base, or a
        shard-wise overlay for a :class:`ShardedIndex`), then exactly the
        cache entries the delta could have changed are dropped.  Swap
        happens *before* invalidation: in the window between them a reader
        can only cache answers from the *new* backend — and any in-flight
        pre-swap computation is discarded by the cache's epoch guard.

        Each effective delta also stamps a new service version: the
        superseded backend stays pinned in the version history, so
        :meth:`as_of` can still answer at any earlier version, and
        snapshot handles taken before the swap keep their exact answers.

        Returns the number of cache entries invalidated.
        """
        inserts, deletes = log.net()
        facts = inserts + deletes
        if not facts:
            return 0
        with self._swap_lock:
            old = self._backend
            new = self._extended_backend(old, log)

            dirty: Set[int] = {pointer for pointer, _ in facts}
            objects: Set[int] = {obj for _, obj in facts}
            # list_aliases(r) can change for any r sharing a delta object
            # with a dirty pointer — on either side of the swap (r may be
            # an alias only before, or only after, the edit).
            affected: Set[int] = set(dirty)
            for obj in objects:
                affected.update(old.list_pointed_by(obj))
                affected.update(new.list_pointed_by(obj))

            self._backend = new
            self._column_of = getattr(new, "column_of", None)
            self._version += 1
            self._history[self._version] = new

            def stale(key) -> bool:
                if len(key) == 3:
                    # Version-qualified entries belong to pinned snapshots:
                    # a historical answer can never go stale.
                    return False
                kind, operand = key
                if kind == "is_alias":
                    return operand[0] in dirty or operand[1] in dirty
                if kind == "list_aliases":
                    return operand in affected
                if kind == "list_points_to":
                    return operand in dirty
                if kind == "list_pointed_by":
                    return operand in objects
                return True

            return self._cache.invalidate_where(stale)

    @staticmethod
    def _extended_backend(backend, log: DeltaLog):
        if isinstance(backend, OverlayIndex):
            return backend.extend(log)
        if isinstance(backend, ShardedIndex):
            return backend.with_delta(log)
        if hasattr(backend, "points_to_contains"):
            # Any Table 1 backend takes the generic overlay — PestrieIndex,
            # the zero-copy FlatIndex (the daemon's lazy-v4 default), or a
            # compatible duck-typed index.
            return OverlayIndex(backend, log)
        raise TypeError(
            "backend %r does not support live deltas" % type(backend).__name__
        )

    # ------------------------------------------------------------------
    # Time travel
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """The service's current (head) version."""
        return self._version

    @property
    def version_floor(self) -> int:
        """The oldest version :meth:`as_of` can still answer."""
        return self._version_floor

    def versions(self) -> List[int]:
        """Every answerable version, oldest first (floor leads the list)."""
        with self._swap_lock:
            known = {self._version_floor, self._version}
            known.update(epoch for epoch in self._history
                         if epoch >= self._version_floor)
            if self._versioned is not None:
                known.update(epoch for epoch in self._versioned.versions()
                             if epoch >= self._version_floor)
            return sorted(known)

    def as_of(self, version: int) -> "AliasSnapshot":
        """Pin a read-only snapshot of the service at ``version``.

        The handle answers all four Table 1 queries (and their batch
        forms) exactly as the service did at that version, no matter how
        many deltas land afterwards — backends are immutable, so the pin
        is just a reference, not a copy.  Versions between two epochs
        resolve to the older epoch; versions outside
        ``[version_floor, version]`` raise
        :class:`~repro.delta.VersionUnavailableError`.
        """
        backend, resolved = self._resolve_version(version)
        return AliasSnapshot(self, backend, resolved)

    def prune_versions(self, floor: int) -> int:
        """Raise the version floor, releasing history below it.

        The service-side analogue of the file compaction watermark: after
        ``prune_versions(v)``, :meth:`as_of` below ``v`` fails loudly with
        :class:`~repro.delta.VersionUnavailableError`.  Snapshot handles
        already pinned below the new floor keep working — they hold their
        backend directly.  Returns the number of history entries dropped.
        """
        if not isinstance(floor, int) or isinstance(floor, bool):
            raise TypeError("version floor must be an integer, got %r" % (floor,))
        with self._swap_lock:
            if floor > self._version:
                raise VersionUnavailableError(
                    "cannot raise the version floor to %d: service head is %d"
                    % (floor, self._version)
                )
            if floor <= self._version_floor:
                return 0
            file_head = (self._versioned.head
                         if self._versioned is not None else None)
            if file_head is None or floor > file_head:
                # Keep the floor state itself resolvable: re-key the
                # backend that answers for the new floor before dropping
                # everything older.
                snap = max((epoch for epoch in self._history if epoch <= floor),
                           default=None)
                if snap is not None:
                    self._history[floor] = self._history[snap]
            dropped = [epoch for epoch in self._history if epoch < floor]
            for epoch in dropped:
                del self._history[epoch]
            self._version_floor = floor
            return len(dropped)

    def _resolve_version(self, version: int):
        """Map a requested version to ``(backend, resolved_epoch)``."""
        if not isinstance(version, int) or isinstance(version, bool):
            raise TypeError("version must be an integer, got %r" % (version,))
        with self._swap_lock:
            if version < self._version_floor:
                raise VersionUnavailableError(
                    "version %d predates the service's version floor %d"
                    % (version, self._version_floor)
                )
            if version > self._version:
                raise VersionUnavailableError(
                    "version %d is ahead of the service head %d"
                    % (version, self._version)
                )
            versioned = self._versioned
            if versioned is not None and version <= versioned.head:
                overlay = versioned.as_of(version)
                resolved = max(
                    (epoch for epoch in versioned.versions() if epoch <= version),
                    default=versioned.floor,
                )
                return overlay, resolved
            snap = max(epoch for epoch in self._history if epoch <= version)
            return self._history[snap], snap

    def _snapshot_is_alias(self, backend, version: int, p: int, q: int) -> bool:
        start = time.perf_counter()
        key = ("is_alias", (p, q) if p <= q else (q, p), version)
        value = self._cache.get(key, _MISS)
        hit = value is not _MISS
        cost: Optional[QueryCost] = None
        if not hit:
            self._stats.record_cache(0, 1)
            # No epoch guard: a version-qualified answer never goes stale
            # (apply_delta's invalidation skips 3-tuple keys entirely).
            with measure() as cost:
                with trace.span("serve.is_alias", version=version), \
                        trace.span("index.answer",
                                   backend=type(backend).__name__):
                    value = backend.is_alias(p, q)
                _fill_cost(cost, backend, version, 0, 1, 1)
            self._cache.put(key, value)
        else:
            self._stats.record_cache(1, 0)
            note_cache_hit()
        elapsed = time.perf_counter() - start
        self._stats.record("is_alias", elapsed)
        self._slow.record("is_alias", (p, q), elapsed, cache_hit=hit,
                          epoch=version, cost=cost)
        return value

    def _snapshot_list(self, backend, version: int, kind: str,
                       operand: int) -> Tuple[int, ...]:
        start = time.perf_counter()
        key = (kind, operand, version)
        value = self._cache.get(key, _MISS)
        hit = value is not _MISS
        cost: Optional[QueryCost] = None
        if not hit:
            self._stats.record_cache(0, 1)
            with measure() as cost:
                with trace.span("serve.%s" % kind, version=version), \
                        trace.span("index.answer",
                                   backend=type(backend).__name__):
                    value = tuple(getattr(backend, kind)(operand))
                _fill_cost(cost, backend, version, 0, 1, 1)
            self._cache.put(key, value)
        else:
            self._stats.record_cache(1, 0)
            note_cache_hit()
        elapsed = time.perf_counter() - start
        self._stats.record(kind, elapsed)
        self._slow.record(kind, (operand,), elapsed, cache_hit=hit,
                          epoch=version, cost=cost)
        return value

    # ------------------------------------------------------------------
    # Single-query API
    # ------------------------------------------------------------------

    def is_alias(self, p: int, q: int) -> bool:
        start = time.perf_counter()
        key = ("is_alias", (p, q) if p <= q else (q, p))
        value = self._cache.get(key, _MISS)
        hit = value is not _MISS
        cost: Optional[QueryCost] = None
        if not hit:
            self._stats.record_cache(0, 1)
            # Snapshot the epoch before the backend: if apply_delta swaps
            # in between, the stale-epoch put below is dropped.
            epoch = self._cache.epoch
            backend = self._backend
            # A miss pays a cost context (misses already pay backend work;
            # hits stay on the passive note_cache_hit path).
            with measure() as cost:
                with trace.span("serve.is_alias"), \
                        trace.span("index.answer",
                                   backend=type(backend).__name__):
                    value = backend.is_alias(p, q)
                _fill_cost(cost, backend, self._version, 0, 1, 1)
            self._cache.put(key, value, epoch=epoch)
        else:
            self._stats.record_cache(1, 0)
            note_cache_hit()
        elapsed = time.perf_counter() - start
        self._stats.record("is_alias", elapsed)
        self._slow.record("is_alias", (p, q), elapsed, cache_hit=hit,
                          epoch=self._version, cost=cost)
        return value

    def list_aliases(self, p: int) -> List[int]:
        return list(self._list_query("list_aliases", p))

    def list_points_to(self, p: int) -> List[int]:
        return list(self._list_query("list_points_to", p))

    def list_pointed_by(self, obj: int) -> List[int]:
        return list(self._list_query("list_pointed_by", obj))

    def _list_query(self, kind: str, operand: int) -> Tuple[int, ...]:
        start = time.perf_counter()
        key = (kind, operand)
        value = self._cache.get(key, _MISS)
        hit = value is not _MISS
        cost: Optional[QueryCost] = None
        if not hit:
            self._stats.record_cache(0, 1)
            epoch = self._cache.epoch
            backend = self._backend
            with measure() as cost:
                with trace.span("serve.%s" % kind), \
                        trace.span("index.answer",
                                   backend=type(backend).__name__):
                    value = tuple(getattr(backend, kind)(operand))
                _fill_cost(cost, backend, self._version, 0, 1, 1)
            self._cache.put(key, value, epoch=epoch)
        else:
            self._stats.record_cache(1, 0)
            note_cache_hit()
        elapsed = time.perf_counter() - start
        self._stats.record(kind, elapsed)
        self._slow.record(kind, (operand,), elapsed, cache_hit=hit,
                          epoch=self._version, cost=cost)
        return value

    # ------------------------------------------------------------------
    # Batch API
    # ------------------------------------------------------------------

    def is_alias_batch(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        """Answer many IsAlias queries in one call.

        Repeated pairs (in the batch or the cache) are answered once; the
        remainder goes through the backend's column-sorted batch path.
        """
        start = time.perf_counter()
        results: List[bool] = [False] * len(pairs)
        pending: Dict[Tuple[int, int], List[int]] = {}
        hits = 0
        for position, (p, q) in enumerate(pairs):
            norm = (p, q) if p <= q else (q, p)
            value = self._cache.get(("is_alias", norm), _MISS)
            if value is _MISS:
                pending.setdefault(norm, []).append(position)
            else:
                hits += 1
                results[position] = value
        cost: Optional[QueryCost] = None
        if pending:
            unique = list(pending)
            # Same ordering contract as the single-query miss path (see
            # is_alias): the epoch is snapshotted BEFORE the backend.  If
            # apply_delta swaps mid-batch, every put below carries the
            # pre-swap epoch and is dropped by the cache's guard — a batch
            # can never launder stale answers into the post-swap cache.
            epoch = self._cache.epoch
            backend = self._backend
            # One cost context and one span pair for the whole batch — the
            # instrumentation cost is paid per call, not per query.
            with measure() as cost:
                with trace.span("serve.is_alias", batch=len(pairs)), \
                        trace.span("index.answer",
                                   backend=type(backend).__name__):
                    batch = getattr(backend, "is_alias_batch", None)
                    if batch is not None:
                        answers = batch(unique)
                    else:
                        answers = [backend.is_alias(p, q) for p, q in unique]
                _fill_cost(cost, backend, self._version,
                           hits, len(pairs) - hits, len(pairs))
            for norm, answer in zip(unique, answers):
                self._cache.put(("is_alias", norm), answer, epoch=epoch)
                for position in pending[norm]:
                    results[position] = answer
        elif hits:
            ambient = current_cost()
            if ambient is not None:
                ambient.cache_hits += hits
        elapsed = time.perf_counter() - start
        self._stats.record_cache(hits, len(pairs) - hits)
        self._stats.record("is_alias", elapsed, queries=len(pairs), batched=True)
        if pairs:
            # A batch logs one entry (the whole call) when its *per-query*
            # average crosses the threshold; the first operands identify it.
            self._slow.record("is_alias", tuple(pairs[:4]), elapsed,
                              cache_hit=not pending, batched=True,
                              queries=len(pairs), epoch=self._version,
                              cost=cost)
        return results

    def list_aliases_many(self, pointers: Sequence[int]) -> List[List[int]]:
        return self._list_batch("list_aliases", pointers)

    def points_to_batch(self, pointers: Sequence[int]) -> List[List[int]]:
        return self._list_batch("list_points_to", pointers)

    def pointed_by_batch(self, objects: Sequence[int]) -> List[List[int]]:
        return self._list_batch("list_pointed_by", objects)

    def _list_batch(self, kind: str, operands: Sequence[int]) -> List[List[int]]:
        start = time.perf_counter()
        results: List[Optional[Tuple[int, ...]]] = [None] * len(operands)
        pending: Dict[int, List[int]] = {}
        hits = 0
        for position, operand in enumerate(operands):
            value = self._cache.get((kind, operand), _MISS)
            if value is _MISS:
                pending.setdefault(operand, []).append(position)
            else:
                hits += 1
                results[position] = value
        cost: Optional[QueryCost] = None
        if pending:
            unique = list(pending)
            # Epoch before backend — the batch-wide stale-put guard; see
            # is_alias_batch.  backend and column_of are captured once so
            # the whole batch resolves against one snapshot (column_of may
            # belong to an older backend than `backend`, but it is only a
            # sort key for locality, never an answer).
            epoch = self._cache.epoch
            backend = self._backend
            column_of = self._column_of
            if kind != "list_pointed_by" and column_of is not None:
                # Column-sorted resolution: consecutive misses touch
                # neighbouring slabs, keeping the lookups cache-friendly.
                unique.sort(key=lambda operand: _column_key(column_of, operand))
            query = getattr(backend, kind)
            with measure() as cost:
                with trace.span("serve.%s" % kind, batch=len(operands)), \
                        trace.span("index.answer",
                                   backend=type(backend).__name__):
                    for operand in unique:
                        value = tuple(query(operand))
                        self._cache.put((kind, operand), value, epoch=epoch)
                        for position in pending[operand]:
                            results[position] = value
                _fill_cost(cost, backend, self._version,
                           hits, len(operands) - hits, len(operands))
        elif hits:
            ambient = current_cost()
            if ambient is not None:
                ambient.cache_hits += hits
        elapsed = time.perf_counter() - start
        self._stats.record_cache(hits, len(operands) - hits)
        self._stats.record(kind, elapsed, queries=len(operands), batched=True)
        if operands:
            self._slow.record(kind, tuple(operands[:4]), elapsed,
                              cache_hit=not pending, batched=True,
                              queries=len(operands), epoch=self._version,
                              cost=cost)
        return [list(value) for value in results]


class AliasSnapshot:
    """A pinned, read-only view of an :class:`AliasService` at one version.

    Obtained from :meth:`AliasService.as_of`.  The snapshot holds a direct
    reference to the (immutable) backend that was current at its version,
    so its answers are fixed for the handle's lifetime — concurrent
    ``apply_delta`` calls, cache invalidations, and even
    :meth:`AliasService.prune_versions` past this version cannot change
    them.  Results are cached in the service's LRU under
    version-qualified keys, shared between all snapshots pinned at the
    same resolved version.
    """

    __slots__ = ("_backend", "_service", "_version")

    def __init__(self, service: AliasService, backend, version: int):
        self._service = service
        self._backend = backend
        self._version = version

    @property
    def version(self) -> int:
        """The resolved epoch this snapshot answers for."""
        return self._version

    @property
    def backend(self):
        return self._backend

    @property
    def n_pointers(self) -> int:
        return self._backend.n_pointers

    @property
    def n_objects(self) -> int:
        return self._backend.n_objects

    # -- single queries -------------------------------------------------

    def is_alias(self, p: int, q: int) -> bool:
        return self._service._snapshot_is_alias(self._backend, self._version, p, q)

    def list_aliases(self, p: int) -> List[int]:
        return list(self._service._snapshot_list(
            self._backend, self._version, "list_aliases", p))

    def list_points_to(self, p: int) -> List[int]:
        return list(self._service._snapshot_list(
            self._backend, self._version, "list_points_to", p))

    def list_pointed_by(self, obj: int) -> List[int]:
        return list(self._service._snapshot_list(
            self._backend, self._version, "list_pointed_by", obj))

    # -- batch queries ---------------------------------------------------

    def is_alias_batch(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        return [self.is_alias(p, q) for p, q in pairs]

    def list_aliases_many(self, pointers: Sequence[int]) -> List[List[int]]:
        return [self.list_aliases(p) for p in pointers]

    def points_to_batch(self, pointers: Sequence[int]) -> List[List[int]]:
        return [self.list_points_to(p) for p in pointers]

    def pointed_by_batch(self, objects: Sequence[int]) -> List[List[int]]:
        return [self.list_pointed_by(obj) for obj in objects]


def _is_delta_capable(path: str) -> bool:
    """True when the file's base format can carry a DELTA chain (v3/v4)."""
    from ..core.encoder import MAGIC_V3, MAGIC_V4

    with open(path, "rb") as stream:
        magic = stream.read(8)
    return magic in (MAGIC_V3, MAGIC_V4)


def _column_key(column_of, operand: int):
    column = column_of(operand)
    return (column is None, column)
