"""repro.serve — the high-throughput alias query service layer.

Production front-end over decoded Pestrie indexes: multi-file sharding by
pointer-id range (:class:`ShardedIndex`), a thread-safe instrumented
service with batch APIs and a bounded LRU result cache
(:class:`AliasService`), and the statistics objects behind the
``repro-pestrie serve-stats`` CLI subcommand.
"""

from .cache import LRUCache
from .service import AliasService, AliasSnapshot
from .sharding import ShardedIndex
from .stats import QUERY_KINDS, ServiceStats, StatsSnapshot

__all__ = [
    "AliasService",
    "AliasSnapshot",
    "LRUCache",
    "QUERY_KINDS",
    "ServiceStats",
    "ShardedIndex",
    "StatsSnapshot",
]
