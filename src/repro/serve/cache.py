"""A bounded, thread-safe LRU result cache for the alias service.

Pestrie query structures are immutable after decode, so every cached
answer stays valid for the life of the service; the only eviction policy
needed is recency.  Values are stored as immutable objects (booleans or
tuples) so a hit can be handed to concurrent callers without copying.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    All operations take the internal lock, so one instance can be shared
    by every worker thread of a service.  A ``capacity`` of zero disables
    caching entirely (every ``get`` misses, ``put`` is a no-op).
    """

    __slots__ = ("_capacity", "_data", "_lock", "hits", "misses")

    _MISS = object()

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self._capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default: Optional[object] = None) -> object:
        """Return the cached value (refreshing its recency) or ``default``."""
        with self._lock:
            value = self._data.get(key, self._MISS)
            if value is self._MISS:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh a value, evicting the oldest entry if full."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self._capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
