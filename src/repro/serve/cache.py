"""A bounded, thread-safe LRU result cache for the alias service.

Pestrie query structures are immutable after decode, so a cached answer
stays valid until the service swaps its backend (``apply_delta``); the
eviction policy is recency, plus targeted invalidation at swap time.
Values are stored as immutable objects (booleans or tuples) so a hit can
be handed to concurrent callers without copying.

Invalidation is epoch-guarded against the compute/put race: a reader may
compute an answer against the old backend, lose the CPU, and try to cache
it after the swap already invalidated that key.  ``put`` therefore accepts
the epoch the reader observed *before* computing; ``invalidate_where``
bumps the epoch under the same lock, so any in-flight put stamped with the
old epoch is silently dropped instead of resurrecting a stale answer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional

from ..obs import get_registry


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    All operations take the internal lock, so one instance can be shared
    by every worker thread of a service.  A ``capacity`` of zero disables
    caching entirely (every ``get`` misses, ``put`` is a no-op).
    """

    __slots__ = ("_capacity", "_data", "_epoch", "_evictions", "_invalidated",
                 "_lock", "hits", "misses")

    _MISS = object()

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self._capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._epoch = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        # Registry handles held for the instance's lifetime; the hot get/put
        # paths never touch them except on the (rare) eviction branch.
        registry = get_registry()
        self._evictions = registry.counter("repro_cache_evictions_total")
        self._invalidated = registry.counter("repro_cache_invalidated_total")

    @property
    def epoch(self) -> int:
        """Current invalidation epoch; read it *before* computing a value."""
        with self._lock:
            return self._epoch

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default: Optional[object] = None) -> object:
        """Return the cached value (refreshing its recency) or ``default``."""
        with self._lock:
            value = self._data.get(key, self._MISS)
            if value is self._MISS:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: object, epoch: Optional[int] = None) -> None:
        """Insert or refresh a value, evicting the oldest entry if full.

        With ``epoch`` given, the put is dropped when an invalidation has
        happened since the caller read :attr:`epoch` — the value may have
        been computed against a backend that is no longer current.
        """
        if self._capacity == 0:
            return
        with self._lock:
            if epoch is not None and epoch != self._epoch:
                return
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions.inc()

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; bump the epoch.

        Returns the number of entries removed.  The epoch bump and the
        removals are one atomic step, so a concurrent ``put`` stamped with
        the pre-invalidation epoch can never land afterwards.
        """
        with self._lock:
            self._epoch += 1
            stale = [key for key in self._data if predicate(key)]
            for key in stale:
                del self._data[key]
        if stale:
            self._invalidated.inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._epoch += 1
            self._data.clear()
            self.hits = 0
            self.misses = 0
