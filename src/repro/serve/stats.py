"""Service instrumentation: query counters, cache hit rate, latencies.

Kept deliberately lightweight — one lock, integer counters, and a bounded
ring buffer of recent latency samples per query kind — so instrumenting
the hot path costs nanoseconds, not a measurable fraction of a query.
Batch calls record one sample covering the whole call, weighted down to a
per-query figure, so the quantiles stay comparable between the single and
batched entry points.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List

#: The Table 1 query kinds, in the order every report lists them.
QUERY_KINDS = ("is_alias", "list_aliases", "list_points_to", "list_pointed_by")

#: Ring-buffer capacity of the per-kind latency reservoirs.
DEFAULT_WINDOW = 2048


def quantile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (nearest-rank) of ``samples``; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


class _Reservoir:
    """Fixed-size ring buffer of the most recent latency samples."""

    __slots__ = ("_samples", "_capacity", "_next")

    def __init__(self, capacity: int):
        self._samples: List[float] = []
        self._capacity = capacity
        self._next = 0

    def record(self, seconds: float) -> None:
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self._capacity

    def snapshot(self) -> List[float]:
        return list(self._samples)


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable picture of a service's counters at one instant."""

    counts: Dict[str, int] = field(default_factory=dict)
    batched: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-kind nearest-rank quantiles over the recent-latency window, in
    #: seconds per query (batch calls contribute their per-query average).
    latency_p50: Dict[str, float] = field(default_factory=dict)
    latency_p95: Dict[str, float] = field(default_factory=dict)

    @property
    def total_queries(self) -> int:
        return sum(self.counts.values())

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    def render(self) -> str:
        """A human-readable multi-line report (the serve-stats output)."""
        lines = ["%-16s %10s %10s %12s %12s" % ("query", "count", "batched",
                                                "p50 (us)", "p95 (us)")]
        for kind in QUERY_KINDS:
            lines.append("%-16s %10d %10d %12.1f %12.1f" % (
                kind,
                self.counts.get(kind, 0),
                self.batched.get(kind, 0),
                1e6 * self.latency_p50.get(kind, 0.0),
                1e6 * self.latency_p95.get(kind, 0.0),
            ))
        lines.append("total queries:  %d" % self.total_queries)
        lines.append("cache:          %.1f%% hit rate (%d hits / %d misses)" % (
            100.0 * self.cache_hit_rate, self.cache_hits, self.cache_misses))
        return "\n".join(lines)


class ServiceStats:
    """Thread-safe accumulator behind :class:`StatsSnapshot`."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window <= 0:
            raise ValueError("latency window must be positive")
        self._lock = threading.Lock()
        self._window = window
        self._reset_locked()

    def _reset_locked(self) -> None:
        self._counts = {kind: 0 for kind in QUERY_KINDS}
        self._batched = {kind: 0 for kind in QUERY_KINDS}
        self._cache_hits = 0
        self._cache_misses = 0
        self._reservoirs = {kind: _Reservoir(self._window) for kind in QUERY_KINDS}

    def record(self, kind: str, seconds: float, queries: int = 1,
               batched: bool = False) -> None:
        """Count ``queries`` served in ``seconds`` (one call's wall time)."""
        if kind not in self._counts:
            raise ValueError("unknown query kind %r" % kind)
        if queries <= 0:
            return
        with self._lock:
            self._counts[kind] += queries
            if batched:
                self._batched[kind] += queries
            self._reservoirs[kind].record(seconds / queries)

    def record_cache(self, hits: int, misses: int) -> None:
        with self._lock:
            self._cache_hits += hits
            self._cache_misses += misses

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            samples = {kind: res.snapshot() for kind, res in self._reservoirs.items()}
            return StatsSnapshot(
                counts=dict(self._counts),
                batched=dict(self._batched),
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                latency_p50={k: quantile(v, 0.50) for k, v in samples.items()},
                latency_p95={k: quantile(v, 0.95) for k, v in samples.items()},
            )
