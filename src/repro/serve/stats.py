"""Service instrumentation: query counters, cache hit rate, latencies.

Since the telemetry PR this module is a thin façade over the shared
:mod:`repro.obs` registry: the counters live in process-wide metric
series labelled with a per-instance ``service`` id (so two services never
mix numbers and both appear in one Prometheus scrape), while the
nearest-rank latency quantiles keep their exact per-kind reservoirs (the
registry's histograms are log-bucketed, which is the wrong tool for a
p50/p95 report that must match the paper's microsecond tables).

The public surface is unchanged: :meth:`ServiceStats.record` /
:meth:`record_cache` / :meth:`snapshot` / :meth:`reset`, and
:class:`StatsSnapshot` still renders the ``serve-stats`` report.  Batch
calls record one sample covering the whole call, weighted down to a
per-query figure, so the quantiles stay comparable between the single and
batched entry points.
"""

from __future__ import annotations

import itertools
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List

from ..obs import get_registry

#: The Table 1 query kinds, in the order every report lists them.
QUERY_KINDS = ("is_alias", "list_aliases", "list_points_to", "list_pointed_by")

#: Ring-buffer capacity of the per-kind latency reservoirs.
DEFAULT_WINDOW = 2048

#: Per-process ServiceStats instance ids (the ``service`` metric label).
_INSTANCE_IDS = itertools.count()


def quantile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (nearest-rank) of ``samples``; 0.0 when empty.

    Nearest-rank is the ``ceil(q * n)``-th order statistic.  The previous
    ``int(q * n)`` truncation systematically picked one rank too high for
    small windows (e.g. the p50 of two samples came out as the *larger*
    one) because truncation was applied to a 0-based index without the
    ceiling: ``ceil(q * n) - 1`` is the correct 0-based rank.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class _Reservoir:
    """Fixed-size ring buffer of the most recent latency samples."""

    __slots__ = ("_samples", "_capacity", "_next")

    def __init__(self, capacity: int):
        self._samples: List[float] = []
        self._capacity = capacity
        self._next = 0

    def record(self, seconds: float) -> None:
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self._capacity

    def snapshot(self) -> List[float]:
        return list(self._samples)


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable picture of a service's counters at one instant."""

    counts: Dict[str, int] = field(default_factory=dict)
    batched: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-kind nearest-rank quantiles over the recent-latency window, in
    #: seconds per query (batch calls contribute their per-query average).
    latency_p50: Dict[str, float] = field(default_factory=dict)
    latency_p95: Dict[str, float] = field(default_factory=dict)

    @property
    def total_queries(self) -> int:
        return sum(self.counts.values())

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    def render(self) -> str:
        """A human-readable multi-line report (the serve-stats output)."""
        lines = ["%-16s %10s %10s %12s %12s" % ("query", "count", "batched",
                                                "p50 (us)", "p95 (us)")]
        # The fixed Table 1 kinds first, then anything else ever recorded
        # (a future column_of batch, say) so no traffic goes unreported.
        extra = sorted(kind for kind in self.counts if kind not in QUERY_KINDS)
        for kind in tuple(QUERY_KINDS) + tuple(extra):
            lines.append("%-16s %10d %10d %12.1f %12.1f" % (
                kind,
                self.counts.get(kind, 0),
                self.batched.get(kind, 0),
                1e6 * self.latency_p50.get(kind, 0.0),
                1e6 * self.latency_p95.get(kind, 0.0),
            ))
        lines.append("total queries:  %d" % self.total_queries)
        lines.append("cache:          %.1f%% hit rate (%d hits / %d misses)" % (
            100.0 * self.cache_hit_rate, self.cache_hits, self.cache_misses))
        return "\n".join(lines)


class _KindHandles:
    """One query kind's registry series plus its local quantile reservoir."""

    __slots__ = ("count", "batched", "latency", "reservoir")

    def __init__(self, registry, service: str, kind: str, window: int):
        self.count = registry.counter("repro_serve_queries_total",
                                      service=service, kind=kind)
        self.batched = registry.counter("repro_serve_batched_queries_total",
                                        service=service, kind=kind)
        self.latency = registry.histogram("repro_serve_latency_seconds",
                                          service=service, kind=kind)
        self.reservoir = _Reservoir(window)


class ServiceStats:
    """Thread-safe accumulator behind :class:`StatsSnapshot`.

    Counter state lives in ``registry`` (default: the process-wide one)
    under this instance's unique ``service`` label, so the same numbers
    the snapshot reports are scrapeable via ``repro-pestrie metrics``.
    Unknown kinds are registered on first use — the membership check and
    the registration happen under one lock, so two threads racing on a new
    kind cannot observe a half-initialised series.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, registry=None,
                 service: str = ""):
        if window <= 0:
            raise ValueError("latency window must be positive")
        self._registry = registry if registry is not None else get_registry()
        self.service = service or "s%d" % next(_INSTANCE_IDS)
        self._lock = threading.Lock()
        self._window = window
        self._kinds: Dict[str, _KindHandles] = {}
        self._cache_hits = self._registry.counter(
            "repro_serve_cache_hits_total", service=self.service)
        self._cache_misses = self._registry.counter(
            "repro_serve_cache_misses_total", service=self.service)
        with self._lock:
            self._reset_locked()

    def _reset_locked(self) -> None:
        for handles in self._kinds.values():
            handles.count.reset()
            handles.batched.reset()
            handles.latency.reset()
        self._kinds = {}
        for kind in QUERY_KINDS:
            self._kinds[kind] = _KindHandles(self._registry, self.service,
                                             kind, self._window)
        self._cache_hits.reset()
        self._cache_misses.reset()

    def _handles(self, kind: str) -> _KindHandles:
        # Lock-free fast path: dict reads are atomic, and a populated entry
        # never changes.  Only a first-seen kind takes the lock, where the
        # membership check is re-done so two racing registrants converge on
        # one handle set.
        handles = self._kinds.get(kind)
        if handles is not None:
            return handles
        with self._lock:
            handles = self._kinds.get(kind)
            if handles is None:
                handles = _KindHandles(self._registry, self.service, kind,
                                       self._window)
                self._kinds[kind] = handles
            return handles

    def record(self, kind: str, seconds: float, queries: int = 1,
               batched: bool = False) -> None:
        """Count ``queries`` served in ``seconds`` (one call's wall time)."""
        if queries <= 0:
            return
        handles = self._handles(kind)
        per_query = seconds / queries
        with self._lock:
            handles.reservoir.record(per_query)
        handles.count.inc(queries)
        if batched:
            handles.batched.inc(queries)
        handles.latency.observe(per_query)

    def record_cache(self, hits: int, misses: int) -> None:
        if hits:
            self._cache_hits.inc(hits)
        if misses:
            self._cache_misses.inc(misses)

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            kinds = dict(self._kinds)
            samples = {kind: handles.reservoir.snapshot()
                       for kind, handles in kinds.items()}
        return StatsSnapshot(
            counts={kind: handles.count.value for kind, handles in kinds.items()},
            batched={kind: handles.batched.value for kind, handles in kinds.items()},
            cache_hits=self._cache_hits.value,
            cache_misses=self._cache_misses.value,
            latency_p50={k: quantile(v, 0.50) for k, v in samples.items()},
            latency_p95={k: quantile(v, 0.95) for k, v in samples.items()},
        )
