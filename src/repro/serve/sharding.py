"""Multi-file sharding: one logical index over pointer-id ranges.

A production deployment persists one Pestrie file per analysis unit (a
library, a partition of a whole-program result) and serves them together.
:class:`ShardedIndex` stacks several decoded :class:`PestrieIndex` objects
into a single Table 1 backend: shard ``i`` serves the global pointer ids
``[offset_i, offset_i + n_pointers_i)`` while all shards share one object
id universe.

Semantics: each shard must be the Pestrie encoding of a row-slice of one
global points-to matrix (the concatenation of the slices, in shard order,
is the global matrix).  Within a shard every query is the exact Pestrie
answer; across shards aliasing falls back to the definition — the
points-to sets of the two pointers intersect — which is exactly the
oracle the per-shard encodings preserve.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.query import PestrieIndex
from ..obs import get_registry

_REGISTRY = get_registry()
_SAME_SHARD = _REGISTRY.counter("repro_shard_queries_total", scope="same")
_CROSS_SHARD = _REGISTRY.counter("repro_shard_queries_total", scope="cross")
_SWAPS = _REGISTRY.counter("repro_shard_swaps_total")


class ShardedIndex:
    """Several pointer-id-range shards behind the Table 1 protocol.

    Shards are duck-typed: anything speaking the protocol fits, which is
    how :meth:`with_delta` mixes pristine :class:`PestrieIndex` shards
    with :class:`~repro.delta.OverlayIndex` ones after a live update.
    """

    def __init__(self, indexes: Sequence[PestrieIndex]):
        if not indexes:
            raise ValueError("a sharded index needs at least one shard")
        self._indexes: List[PestrieIndex] = list(indexes)
        self._offsets: List[int] = [0]
        for index in self._indexes:
            self._offsets.append(self._offsets[-1] + index.n_pointers)
        self.n_pointers = self._offsets[-1]
        self.n_objects = max(index.n_objects for index in self._indexes)

    @classmethod
    def from_files(cls, paths: Sequence[str], mode: str = "ptlist",
                   lazy: bool = False) -> "ShardedIndex":
        """Serve several persistent files as one logical index.

        With ``lazy=True`` each shard is an mmap-backed lazy open: only the
        headers are read at startup, and a shard decodes its sections on
        the first query routed to it — cold start stays O(shard count),
        not O(total bytes).  Call :meth:`close` to release the mappings.
        """
        from ..core.pipeline import load_index

        indexes: List[PestrieIndex] = []
        try:
            for path in paths:
                indexes.append(load_index(path, mode=mode, lazy=lazy))
            # Constructed inside the guard: a constructor failure must
            # release the k opened mappings just like an open failure.
            return cls(indexes)
        except BaseException:
            for index in indexes:
                close = getattr(index, "close", None)
                if close is not None:
                    try:
                        close()
                    except Exception:
                        pass  # best effort; never mask the original error
            raise

    def close(self) -> None:
        """Release every shard's backing container (no-op for eager shards).

        Shards whose structures already materialised keep answering;
        anything unmaterialised fails cleanly with ``ContainerClosedError``
        on its next query.
        """
        for index in self._indexes:
            close = getattr(index, "close", None)
            if close is not None:
                close()

    @property
    def shard_count(self) -> int:
        return len(self._indexes)

    @property
    def shards(self) -> Tuple[PestrieIndex, ...]:
        return tuple(self._indexes)

    def shard_of(self, pointer: int) -> Tuple[int, int]:
        """Map a global pointer id to ``(shard index, local pointer id)``."""
        if not 0 <= pointer < self.n_pointers:
            raise IndexError(
                "pointer id %d out of range [0, %d)" % (pointer, self.n_pointers)
            )
        shard = bisect_right(self._offsets, pointer) - 1
        return shard, pointer - self._offsets[shard]

    def column_of(self, pointer: int) -> Optional[Tuple[int, int]]:
        """A sortable batching key: ``(shard, ptList column)``; None if untracked."""
        shard, local = self.shard_of(pointer)
        column = self._indexes[shard].column_of(local)
        return None if column is None else (shard, column)

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------

    def swap_shard(self, position: int, index: PestrieIndex) -> None:
        """Replace one shard in place with an equivalent-dimension index.

        The replacement must serve the same pointer-id range (typically a
        freshly compacted or re-loaded encoding of the same slice).  The
        shard list is rebuilt and swapped with a single reference
        assignment, so concurrent readers see either the old or the new
        list — never a half-updated one.
        """
        if not 0 <= position < len(self._indexes):
            raise IndexError("shard position %d out of range [0, %d)"
                             % (position, len(self._indexes)))
        current = self._indexes[position]
        if index.n_pointers != current.n_pointers:
            raise ValueError(
                "replacement shard serves %d pointers, shard %d serves %d"
                % (index.n_pointers, position, current.n_pointers)
            )
        replacement = list(self._indexes)
        replacement[position] = index
        self._indexes = replacement
        _SWAPS.inc()

    def with_delta(self, log) -> "ShardedIndex":
        """A new sharded index with a global edit script overlaid.

        Facts are routed to their shard by pointer id; each touched shard
        becomes (or extends) an :class:`~repro.delta.OverlayIndex` over a
        shard-local log, and untouched shards are shared as-is with the
        new instance.
        """
        from ..delta import INSERT, DeltaLog, OverlayIndex

        per_shard: Dict[int, DeltaLog] = {}
        for op, pointer, obj in log:
            shard, local = self.shard_of(pointer)
            shard_log = per_shard.setdefault(shard, DeltaLog())
            if op == INSERT:
                shard_log.insert(local, obj)
            else:
                shard_log.delete(local, obj)
        replacement = list(self._indexes)
        for shard, shard_log in per_shard.items():
            index = replacement[shard]
            if isinstance(index, OverlayIndex):
                replacement[shard] = index.extend(shard_log)
            else:
                replacement[shard] = OverlayIndex(index, shard_log)
        return ShardedIndex(replacement)

    # ------------------------------------------------------------------
    # Table 1 queries
    # ------------------------------------------------------------------

    def is_alias(self, p: int, q: int) -> bool:
        shard_p, local_p = self.shard_of(p)
        shard_q, local_q = self.shard_of(q)
        if shard_p == shard_q:
            _SAME_SHARD.inc()
            return self._indexes[shard_p].is_alias(local_p, local_q)
        _CROSS_SHARD.inc()
        points_p = self._indexes[shard_p].list_points_to(local_p)
        if not points_p:
            return False
        points_q = self._indexes[shard_q].list_points_to(local_q)
        return not set(points_p).isdisjoint(points_q)

    def is_alias_batch(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        """Batched IsAlias: same-shard runs go through the shard's own
        column-sorted batch path; cross-shard pairs intersect points-to sets."""
        results = [False] * len(pairs)
        same_shard: Dict[int, List[Tuple[int, int, int]]] = {}
        cross: List[Tuple[int, int, int, int, int]] = []
        for position, (p, q) in enumerate(pairs):
            shard_p, local_p = self.shard_of(p)
            shard_q, local_q = self.shard_of(q)
            if shard_p == shard_q:
                same_shard.setdefault(shard_p, []).append((position, local_p, local_q))
            else:
                cross.append((position, shard_p, local_p, shard_q, local_q))
        if same_shard:
            _SAME_SHARD.inc(sum(len(jobs) for jobs in same_shard.values()))
        if cross:
            _CROSS_SHARD.inc(len(cross))
        for shard, jobs in same_shard.items():
            answers = self._indexes[shard].is_alias_batch(
                [(local_p, local_q) for _, local_p, local_q in jobs]
            )
            for (position, _, _), answer in zip(jobs, answers):
                results[position] = answer
        for position, shard_p, local_p, shard_q, local_q in cross:
            points_p = self._indexes[shard_p].list_points_to(local_p)
            if not points_p:
                continue
            points_q = self._indexes[shard_q].list_points_to(local_q)
            results[position] = not set(points_p).isdisjoint(points_q)
        return results

    def list_points_to(self, p: int) -> List[int]:
        shard, local = self.shard_of(p)
        return self._indexes[shard].list_points_to(local)

    def list_pointed_by(self, obj: int) -> List[int]:
        if not 0 <= obj < self.n_objects:
            raise IndexError("object id %d out of range [0, %d)" % (obj, self.n_objects))
        result: List[int] = []
        for shard, index in enumerate(self._indexes):
            if obj < index.n_objects:
                base = self._offsets[shard]
                result.extend(base + local for local in index.list_pointed_by(obj))
        return result

    def list_aliases(self, p: int) -> List[int]:
        shard, local = self.shard_of(p)
        base = self._offsets[shard]
        result = [base + q for q in self._indexes[shard].list_aliases(local)]
        if len(self._indexes) > 1:
            # Cross-shard aliases: every pointer of another shard reaching
            # one of p's objects.  Collected per shard into a set because a
            # pointer sharing several objects with p must appear once.
            points = self._indexes[shard].list_points_to(local)
            for other, index in enumerate(self._indexes):
                if other == shard:
                    continue
                members = set()
                for obj in points:
                    if obj < index.n_objects:
                        members.update(index.list_pointed_by(obj))
                other_base = self._offsets[other]
                result.extend(other_base + q for q in sorted(members))
        return result
