"""A from-scratch reduced ordered BDD engine.

Implements the standard ROBDD machinery the paper's BDD baseline relies on
(BuDDy / JavaBDD in the original artefact): hash-consed nodes, memoised
``apply``/``ite``, restriction, satisfying-assignment enumeration, and node
counting.  Nodes are rows in parallel arrays — ``var``, ``low``, ``high`` —
with terminals at ids 0 (FALSE) and 1 (TRUE); canonicity is maintained by
the unique table, so semantic equality is id equality.

Variables are ordered by their integer index: smaller index = closer to the
root.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

FALSE = 0
TRUE = 1

#: Sentinel variable index for terminal nodes (orders after all real vars).
_TERMINAL_VAR = 1 << 30


class BddManager:
    """Owns the node store, the unique table, and the operation caches."""

    def __init__(self, n_vars: int):
        if n_vars < 0:
            raise ValueError("variable count must be non-negative")
        self.n_vars = n_vars
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node store
    # ------------------------------------------------------------------

    def mk(self, var: int, low: int, high: int) -> int:
        """Hash-consed node constructor (the reduce rules live here)."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var_of(self, node: int) -> int:
        return self._var[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        return node <= TRUE

    def variable(self, var: int) -> int:
        """The BDD of the literal ``x_var``."""
        if not 0 <= var < self.n_vars:
            raise IndexError("variable %d out of range" % var)
        return self.mk(var, FALSE, TRUE)

    def nvariable(self, var: int) -> int:
        """The BDD of ``¬x_var``."""
        return self.mk(var, TRUE, FALSE)

    def size(self) -> int:
        """Total allocated nodes, including the two terminals."""
        return len(self._var)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def apply(self, op: str, a: int, b: int) -> int:
        """Binary operation: ``"and"``, ``"or"``, ``"xor"``, ``"diff"``."""
        if op == "and":
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
            if a == b:
                return a
        elif op == "or":
            if a == TRUE or b == TRUE:
                return TRUE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == b:
                return a
        elif op == "xor":
            if a == b:
                return FALSE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
        elif op == "diff":
            if a == FALSE or b == TRUE:
                return FALSE
            if b == FALSE:
                return a
            if a == b:
                return FALSE
        else:
            raise ValueError("unknown BDD operation %r" % op)

        if op in ("and", "or", "xor") and a > b:
            a, b = b, a  # commutative: canonicalise the cache key
        key = (op, a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached

        var_a, var_b = self._var[a], self._var[b]
        top = min(var_a, var_b)
        low_a, high_a = (self._low[a], self._high[a]) if var_a == top else (a, a)
        low_b, high_b = (self._low[b], self._high[b]) if var_b == top else (b, b)
        result = self.mk(
            top,
            self.apply(op, low_a, low_b),
            self.apply(op, high_a, high_b),
        )
        self._apply_cache[key] = result
        return result

    def and_(self, a: int, b: int) -> int:
        return self.apply("and", a, b)

    def or_(self, a: int, b: int) -> int:
        return self.apply("or", a, b)

    def not_(self, a: int) -> int:
        return self.ite(a, FALSE, TRUE)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f ∧ g) ∨ (¬f ∧ h)``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._var[f], self._var[g], self._var[h])

        def cofactor(node: int, branch: bool) -> int:
            if self._var[node] != top:
                return node
            return self._high[node] if branch else self._low[node]

        result = self.mk(
            top,
            self.ite(cofactor(f, False), cofactor(g, False), cofactor(h, False)),
            self.ite(cofactor(f, True), cofactor(g, True), cofactor(h, True)),
        )
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Cubes, restriction, evaluation, enumeration
    # ------------------------------------------------------------------

    def cube(self, assignment: Dict[int, bool]) -> int:
        """The conjunction of literals given as ``{var: polarity}``."""
        result = TRUE
        for var in sorted(assignment, reverse=True):
            if assignment[var]:
                result = self.mk(var, FALSE, result)
            else:
                result = self.mk(var, result, FALSE)
        return result

    def restrict(self, node: int, assignment: Dict[int, bool]) -> int:
        """Substitute constants for the given variables."""
        cache: Dict[int, int] = {}

        def walk(current: int) -> int:
            if current <= TRUE:
                return current
            hit = cache.get(current)
            if hit is not None:
                return hit
            var = self._var[current]
            if var in assignment:
                result = walk(self._high[current] if assignment[var] else self._low[current])
            else:
                result = self.mk(var, walk(self._low[current]), walk(self._high[current]))
            cache[current] = result
            return result

        return walk(node)

    def evaluate(self, node: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total assignment."""
        while node > TRUE:
            node = self._high[node] if assignment[self._var[node]] else self._low[node]
        return node == TRUE

    def reachable_count(self, node: int) -> int:
        """Nodes reachable from ``node`` (the size a persisted BDD pays for)."""
        seen = {FALSE, TRUE}
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend((self._low[current], self._high[current]))
        return len(seen)

    def satisfying_assignments(
        self, node: int, variables: List[int]
    ) -> Iterator[Dict[int, bool]]:
        """All total assignments over ``variables`` satisfying ``node``.

        Don't-care variables are expanded, which is exactly the costly
        decode step the paper blames for slow BDD queries.
        """
        variables = sorted(variables)
        var_positions = {var: i for i, var in enumerate(variables)}

        def expand(current: int, position: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if position == len(variables):
                if current == TRUE:
                    yield dict(partial)
                return
            var = variables[position]
            node_var = self._var[current]
            if current <= TRUE or node_var != var:
                if current == FALSE:
                    return
                # ``var`` is a don't-care here: branch both ways.
                for polarity in (False, True):
                    partial[var] = polarity
                    yield from expand(current, position + 1, partial)
                del partial[var]
                return
            for polarity, child in ((False, self._low[current]), (True, self._high[current])):
                if child == FALSE:
                    continue
                partial[var] = polarity
                yield from expand(child, position + 1, partial)
            if var in partial:
                del partial[var]

        # Only sound when the node's support is within ``variables``.
        support = self.support(node)
        if not support.issubset(set(variables)):
            raise ValueError("enumeration variables must cover the BDD support")
        del var_positions
        yield from expand(node, 0, {})

    def support(self, node: int) -> set:
        """The set of variables the function actually depends on."""
        seen = set()
        result = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            result.add(self._var[current])
            stack.extend((self._low[current], self._high[current]))
        return result
