"""Encoding a points-to matrix as one BDD (the Whaley/Lam-style baseline).

The relation ``PM ⊆ Pointers × Objects`` becomes a boolean function over
interleaved pointer/object bit variables: variable ``2i`` is pointer bit
``i`` and variable ``2i+1`` is object bit ``i`` (MSB first).  Interleaving
is the standard order for points-to BDDs — it lets equivalent pointers and
equivalent objects share structure, which is where the BDD's compression
comes from.

Equivalent pointer rows are detected first and each distinct points-to set
is turned into one object-cube disjunction, OR-ed with the cube of every
pointer in the class — mirroring how BDD-based analyses merge duplicated
rows "for free".
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..matrix.equivalence import partition_rows
from ..matrix.points_to import PointsToMatrix
from .manager import FALSE, BddManager


def _bits_needed(count: int) -> int:
    if count <= 1:
        return 1
    return (count - 1).bit_length()


class PointsToBdd:
    """One BDD holding a whole points-to matrix, plus its bit layout."""

    def __init__(self, manager: BddManager, root: int, n_pointers: int, n_objects: int,
                 pointer_bits: int, object_bits: int):
        self.manager = manager
        self.root = root
        self.n_pointers = n_pointers
        self.n_objects = n_objects
        self.pointer_bits = pointer_bits
        self.object_bits = object_bits

    # Bit layout: pointer bit i (MSB first) ↔ var 2i; object bit i ↔ var 2i+1.

    def pointer_assignment(self, pointer: int) -> Dict[int, bool]:
        return {
            2 * i: bool(pointer >> (self.pointer_bits - 1 - i) & 1)
            for i in range(self.pointer_bits)
        }

    def object_assignment(self, obj: int) -> Dict[int, bool]:
        return {
            2 * i + 1: bool(obj >> (self.object_bits - 1 - i) & 1)
            for i in range(self.object_bits)
        }

    def _object_from_assignment(self, assignment: Dict[int, bool]) -> int:
        value = 0
        for i in range(self.object_bits):
            value = (value << 1) | int(assignment[2 * i + 1])
        return value

    def _pointer_from_assignment(self, assignment: Dict[int, bool]) -> int:
        value = 0
        for i in range(self.pointer_bits):
            value = (value << 1) | int(assignment[2 * i])
        return value

    # ------------------------------------------------------------------
    # Queries (all require decode work — the paper's criticism)
    # ------------------------------------------------------------------

    def list_points_to(self, pointer: int) -> List[int]:
        """Restrict the pointer bits, then enumerate object assignments."""
        restricted = self.manager.restrict(self.root, self.pointer_assignment(pointer))
        if restricted == FALSE:
            return []
        object_vars = [2 * i + 1 for i in range(self.object_bits)]
        result = []
        for assignment in self.manager.satisfying_assignments(restricted, object_vars):
            obj = self._object_from_assignment(assignment)
            if obj < self.n_objects:
                result.append(obj)
        return sorted(result)

    def list_pointed_by(self, obj: int) -> List[int]:
        restricted = self.manager.restrict(self.root, self.object_assignment(obj))
        if restricted == FALSE:
            return []
        pointer_vars = [2 * i for i in range(self.pointer_bits)]
        result = []
        for assignment in self.manager.satisfying_assignments(restricted, pointer_vars):
            pointer = self._pointer_from_assignment(assignment)
            if pointer < self.n_pointers:
                result.append(pointer)
        return sorted(result)

    def is_alias(self, p: int, q: int) -> bool:
        """Decode both points-to sets, then intersect — as the paper says,
        strictly slower than the bitmap route."""
        return bool(set(self.list_points_to(p)) & set(self.list_points_to(q)))

    def list_aliases(self, p: int) -> List[int]:
        mine = set(self.list_points_to(p))
        if not mine:
            return []
        aliases = set()
        for obj in mine:
            aliases.update(self.list_pointed_by(obj))
        aliases.discard(p)
        return sorted(aliases)

    def node_count(self) -> int:
        return self.manager.reachable_count(self.root)

    def to_matrix(self) -> PointsToMatrix:
        """Full decode (round-trip oracle for tests)."""
        matrix = PointsToMatrix(self.n_pointers, self.n_objects)
        for pointer in range(self.n_pointers):
            for obj in self.list_points_to(pointer):
                matrix.add(pointer, obj)
        return matrix


def encode_matrix(matrix: PointsToMatrix) -> PointsToBdd:
    """Build the interleaved-variable BDD for ``matrix``."""
    pointer_bits = _bits_needed(matrix.n_pointers)
    object_bits = _bits_needed(matrix.n_objects)
    manager = BddManager(2 * max(pointer_bits, object_bits))
    encoded = PointsToBdd(manager, FALSE, matrix.n_pointers, matrix.n_objects,
                          pointer_bits, object_bits)

    partition = partition_rows(matrix)
    root = FALSE
    for members in partition.members:
        row = matrix.rows[members[0]]
        objects_bdd = FALSE
        for obj in row:
            objects_bdd = manager.or_(objects_bdd, manager.cube(encoded.object_assignment(obj)))
        if objects_bdd == FALSE:
            continue
        pointers_bdd = FALSE
        for pointer in members:
            pointers_bdd = manager.or_(
                pointers_bdd, manager.cube(encoded.pointer_assignment(pointer))
            )
        root = manager.or_(root, manager.and_(pointers_bdd, objects_bdd))
    encoded.root = root
    return encoded


def facts(encoded: PointsToBdd) -> Iterator[tuple]:
    """Iterate all ``(pointer, object)`` facts stored in the BDD."""
    for pointer in range(encoded.n_pointers):
        for obj in encoded.list_points_to(pointer):
            yield pointer, obj
