"""From-scratch ROBDD engine and the BDD points-to persistence baseline."""

from .encode import PointsToBdd, encode_matrix, facts
from .manager import FALSE, TRUE, BddManager
from .persist import BddPersistence

__all__ = [
    "FALSE",
    "TRUE",
    "BddManager",
    "BddPersistence",
    "PointsToBdd",
    "encode_matrix",
    "facts",
]
