"""BDD persistent format: the reachable node table, 20 bytes per node.

The paper sizes BDD persistence at the node-table level and notes every
BuDDy/JavaBDD node occupies 20 bytes of meta-data; we serialise exactly
that — ``(var, low, high)`` plus the implicit id — as 4 + 2×8-byte fields,
20 bytes, so the measured file sizes carry the same constant.
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO, Dict, List

from .encode import PointsToBdd
from .manager import FALSE, TRUE, BddManager

MAGIC = b"BDDP\x00\x01\x00\x00"

_HEADER = struct.Struct("<IIIIII")  # n_pointers n_objects p_bits o_bits n_nodes root
_NODE = struct.Struct("<IQQ")  # var, low, high — 20 bytes like BuDDy/JavaBDD


class BddPersistence:
    """Encoder/decoder for the BDD node-table format."""

    @staticmethod
    def encode(encoded: PointsToBdd, stream: BinaryIO) -> None:
        manager = encoded.manager
        # Collect reachable nodes in a deterministic topological order
        # (children before parents) so decoding is a single pass.
        order: List[int] = []
        seen = {FALSE, TRUE}
        stack = [(encoded.root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in seen and not expanded:
                continue
            if expanded:
                order.append(node)
                continue
            seen.add(node)
            stack.append((node, True))
            stack.append((manager.high_of(node), False))
            stack.append((manager.low_of(node), False))

        remap: Dict[int, int] = {FALSE: 0, TRUE: 1}
        for position, node in enumerate(order):
            remap[node] = position + 2

        stream.write(MAGIC)
        stream.write(
            _HEADER.pack(
                encoded.n_pointers,
                encoded.n_objects,
                encoded.pointer_bits,
                encoded.object_bits,
                len(order),
                remap[encoded.root],
            )
        )
        for node in order:
            stream.write(
                _NODE.pack(
                    manager.var_of(node),
                    remap[manager.low_of(node)],
                    remap[manager.high_of(node)],
                )
            )

    @staticmethod
    def encode_to_file(encoded: PointsToBdd, path: str) -> int:
        with open(path, "wb") as stream:
            BddPersistence.encode(encoded, stream)
        return os.path.getsize(path)

    @staticmethod
    def decode(stream: BinaryIO) -> PointsToBdd:
        magic = stream.read(8)
        if magic != MAGIC:
            raise ValueError("not a BDD persistence file (bad magic %r)" % magic)
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise ValueError("truncated BDD file header")
        n_pointers, n_objects, p_bits, o_bits, n_nodes, root = _HEADER.unpack(header)
        manager = BddManager(2 * max(p_bits, o_bits))
        remap: Dict[int, int] = {0: FALSE, 1: TRUE}
        for position in range(n_nodes):
            record = stream.read(_NODE.size)
            if len(record) != _NODE.size:
                raise ValueError("truncated BDD node table at node %d" % position)
            var, low, high = _NODE.unpack(record)
            if low not in remap or high not in remap:
                raise ValueError("BDD node %d references a later node" % position)
            remap[position + 2] = manager.mk(var, remap[low], remap[high])
        if root not in remap:
            raise ValueError("BDD root id %d out of range" % root)
        return PointsToBdd(manager, remap[root], n_pointers, n_objects, p_bits, o_bits)

    @staticmethod
    def decode_from_file(path: str) -> PointsToBdd:
        with open(path, "rb") as stream:
            return BddPersistence.decode(stream)
