"""The mmap-backed container: single owner of persisted Pestrie bytes.

A :class:`Container` wraps one persistent file image — a ``PESTRIE1``/
``PESTRIE2``/``PESTRIE3``/``PESTRIE4`` base, plus any ``PESDELT1`` tail —
and is the *only* layer that touches raw persisted bytes.  Opening is
cheap and validates exactly once:

* the magic, flags, and fixed-width header are parsed;
* for ``PESTRIE3`` the ten per-section byte lengths become a table of
  contents (absolute section offsets, no byte-format change), the CRC32
  trailer is verified over the base image, and the per-section length
  declarations are bounds-checked against the value counts;
* for ``PESTRIE4`` the same checks run with the flat struct-of-arrays
  sections included: the four flat counts become a second table of
  contents (:meth:`Container.flat_view`) and the CRC32 trailer covers the
  flat bytes too, so the zero-copy query engine never reads unverified
  memory;
* for ``PESTRIE1`` the offsets are computed from the header counts (raw
  sections are exactly 4 bytes per value); ``PESTRIE2`` boundaries are
  varint sums, discovered lazily section by section.

Nothing else is parsed at open.  Individual sections materialise into
Python integer lists on first touch (:meth:`section_values`), with the
same hostile-input checks — and the same :class:`CorruptFileError`
outcomes — as the eager decoder; parsed sections are cached so a section
is decoded at most once per container.  :meth:`payload` materialises
everything and is what :func:`repro.core.decoder.decode_bytes` is a thin
wrapper over.

Files opened by path are ``mmap``-ped read-only, so cold-start cost is the
page cache's problem, not a full read + copy; :meth:`section_view` exposes
zero-copy ``memoryview`` windows.  Because an exported buffer pins the
mapping, :meth:`close` refuses (``BufferError``) while caller-held views
are alive; lazy readers that already materialised keep working after a
close, while unmaterialised ones fail cleanly with
:class:`ContainerClosedError` instead of touching unmapped memory.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
from typing import List, Optional, Sequence, Tuple, Union

from ..core.decoder import (
    FLAT_SECTION_NAMES,
    CorruptFileError,
    PestriePayload,
    _Reader,
    _decode_rect_section,
    _section_value_counts,
    _validate_rects,
    _validate_timestamps,
    detect_format,
    flat_section_sizes,
)
from ..core.encoder import (
    ABSENT,
    FLAG_COMPACT,
    MAGIC_DELTA,
    MAGIC_DELTA2,
)
from ..core.ioutil import crc32
from ..core.segment_tree import Rect
from ..obs import get_registry, trace
from ..obs.cost import add_parsed_bytes, add_section

_U32 = struct.Struct("<I")

#: Fixed-size ``PESTRIE3`` prefix (mirrors ``repro.core.decoder``).
_V3_HEADER_END = 8 + 1 + 11 * 4 + 10 * 4
_V3_MIN_SIZE = _V3_HEADER_END + 4
#: ``PESTRIE4`` adds four uint32 flat counts after the section lengths.
_V4_HEADER_END = _V3_HEADER_END + 4 * 4
_V4_MIN_SIZE = _V4_HEADER_END + 4
_LEGACY_HEADER_END = 8 + 11 * 4

#: Human-readable section names, in on-disk order (label values for the
#: ``repro_store_sections_materialized_total`` counter).
SECTION_NAMES = (
    "pointer_ts",
    "object_ts",
    "case1_point",
    "case1_vline",
    "case1_hline",
    "case1_rect",
    "case2_point",
    "case2_vline",
    "case2_hline",
    "case2_rect",
)

_SECTION_SHAPES = ("point", "vline", "hline", "rect")

_REGISTRY = get_registry()
_OPEN_CONTAINERS = _REGISTRY.gauge("repro_store_open_containers")
_BYTES_MAPPED = _REGISTRY.gauge("repro_store_bytes_mapped")
_BYTES_PARSED = _REGISTRY.counter("repro_store_bytes_parsed_total")


class ContainerClosedError(ValueError):
    """A lazy read reached a :class:`Container` after :meth:`Container.close`."""


class Container:
    """One persistent file image behind a table-of-contents access layer.

    Build one with :meth:`open` (mmap-backed) or :meth:`from_bytes`
    (in-memory image).  Thread-safe: materialisation is serialised by an
    internal lock, and parsed sections are immutable once cached.
    """

    def __init__(self, *args, **kwargs):
        raise TypeError("use Container.open(path) or Container.from_bytes(data)")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: str, allow_tail: bool = True) -> "Container":
        """Map a persistent file read-only and validate its skeleton once."""
        file = open(path, "rb")
        try:
            size = os.fstat(file.fileno()).st_size
            if size == 0:
                detect_format(b"")  # raises the canonical truncation error
            mapped = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            file.close()
            raise
        try:
            container = cls._build(memoryview(mapped), allow_tail,
                                   path=path, mapped=mapped, file=file)
        except BaseException:
            mapped.close()
            file.close()
            raise
        return container

    @classmethod
    def from_bytes(cls, data: Union[bytes, bytearray, memoryview],
                   allow_tail: bool = True) -> "Container":
        """Wrap an in-memory image (no mmap; same validation and laziness).

        ``bytes`` and read-only contiguous ``memoryview`` input is wrapped
        zero-copy: the container reads through the caller's buffer, which
        must stay alive for the container's lifetime.  Writable input
        (``bytearray``, writable views) is snapshotted with one copy so
        later mutation of the source cannot corrupt parsed state.
        """
        if isinstance(data, memoryview):
            if data.readonly and data.contiguous:
                # Our own flat-byte view over the caller's buffer: no copy,
                # and releasing it on an open error never touches theirs.
                view = data.cast("B") if (data.format, data.ndim) != ("B", 1) else data[:]
            else:
                view = memoryview(bytes(data))
        elif isinstance(data, bytes):
            view = memoryview(data)
        else:
            view = memoryview(bytes(data))
        return cls._build(view, allow_tail, path=None, mapped=None, file=None)

    @classmethod
    def _build(cls, buffer: memoryview, allow_tail: bool, path: Optional[str],
               mapped: Optional[mmap.mmap], file) -> "Container":
        self = object.__new__(cls)
        self._buffer: Optional[memoryview] = buffer
        self._mmap = mapped
        self._file = file
        self.path = path
        self._closed = False
        self._lock = threading.RLock()
        self._appended = 0
        self._sections: List[Optional[List[int]]] = [None] * 10
        self._timestamps: Optional[Tuple[List[Optional[int]], List[int]]] = None
        self._rects: Optional[List[Tuple[Rect, bool]]] = None
        self._origin_set: Optional[set] = None
        self._size = size = len(buffer)

        try:
            self.version, self.compact = detect_format(buffer)
            if self.version == 3:
                self._open_v3(buffer, size)
            elif self.version == 4:
                self._open_v4(buffer, size)
            else:
                self._open_legacy(buffer, size)

            if not allow_tail and self.base_size != size:
                if bytes(buffer[self.base_size : self.base_size + 8]) in (
                        MAGIC_DELTA, MAGIC_DELTA2):
                    # A tail of watermark-only records (what compaction
                    # leaves behind to preserve the epoch floor) carries no
                    # facts: the base alone IS the current state, so plain
                    # readers may use it.  Any fact-bearing record still
                    # forces the delta-aware loader.
                    if not self._tail_is_watermark_only():
                        raise CorruptFileError(
                            "file carries appended DELTA records; decode it "
                            "with repro.delta.load_overlay / overlay_from_bytes"
                        )
                else:
                    raise CorruptFileError(
                        "%d trailing bytes after the base image"
                        % (size - self.base_size)
                    )
        except BaseException:
            # Unpin the mapping so the caller's cleanup close() cannot be
            # masked by a BufferError from this half-built view.  Mark the
            # half-built container closed: it never counted as open, so a
            # later __del__-driven close() must not decrement the open /
            # mapped gauges for it (the caller owns the mmap/file cleanup).
            buffer.release()
            self._buffer = None
            self._closed = True
            raise

        _OPEN_CONTAINERS.inc()
        if mapped is not None:
            _BYTES_MAPPED.inc(size)
        return self

    def _open_v3(self, buffer: memoryview, size: int) -> None:
        if size < _V3_MIN_SIZE:
            raise CorruptFileError(
                "truncated file (%d bytes, PESTRIE3 minimum is %d)" % (size, _V3_MIN_SIZE)
            )
        flags = buffer[8]
        if flags & ~FLAG_COMPACT:
            raise CorruptFileError("unsupported format flags 0x%02x" % flags)
        self.header: Tuple[int, ...] = struct.unpack_from("<11I", buffer, 9)
        lengths = struct.unpack_from("<10I", buffer, 9 + 11 * 4)
        self.base_size = _V3_HEADER_END + sum(lengths) + 4
        if self.base_size > size:
            raise CorruptFileError(
                "section lengths add up to %d bytes but the file has %d"
                % (self.base_size, size)
            )
        stored = _U32.unpack_from(buffer, self.base_size - 4)[0]
        actual = crc32(buffer[: self.base_size - 4])
        if stored != actual:
            raise CorruptFileError(
                "checksum mismatch (stored %08x, computed %08x)" % (stored, actual)
            )
        # Bounds-check every length declaration against its value count now
        # (10 comparisons), so a structural lie never survives to a lazy read.
        self._section_counts = _section_value_counts(list(self.header))
        self._section_lengths: List[Optional[int]] = list(lengths)
        offsets: List[Optional[int]] = []
        offset = _V3_HEADER_END
        for n_values, length in zip(self._section_counts, lengths):
            if not self.compact and length != 4 * n_values:
                raise CorruptFileError(
                    "section declares %d bytes for %d uint32 values" % (length, n_values)
                )
            if self.compact and not n_values <= length <= 5 * n_values:
                raise CorruptFileError(
                    "section declares %d bytes for %d varint values" % (length, n_values)
                )
            offsets.append(offset)
            offset += length
        self._section_offsets = offsets

    def _open_v4(self, buffer: memoryview, size: int) -> None:
        if size < _V4_MIN_SIZE:
            raise CorruptFileError(
                "truncated file (%d bytes, PESTRIE4 minimum is %d)" % (size, _V4_MIN_SIZE)
            )
        flags = buffer[8]
        if flags:
            # The flat layout is raw-coded by construction; any flag bit
            # would change section widths under the zero-copy reader.
            raise CorruptFileError("unsupported PESTRIE4 flags 0x%02x" % flags)
        self.header = struct.unpack_from("<11I", buffer, 9)
        lengths = struct.unpack_from("<10I", buffer, 9 + 11 * 4)
        self.flat_counts = struct.unpack_from("<4I", buffer, _V3_HEADER_END)
        if self.flat_counts[0] > self.n_pointers:
            raise CorruptFileError(
                "flat layout declares %d tracked pointers but the header has %d"
                % (self.flat_counts[0], self.n_pointers)
            )
        flat_sizes = flat_section_sizes(self.n_pointers, self.n_objects,
                                        self.flat_counts)
        self.base_size = _V4_HEADER_END + sum(lengths) + sum(flat_sizes) + 4
        if self.base_size > size:
            raise CorruptFileError(
                "section lengths add up to %d bytes but the file has %d"
                % (self.base_size, size)
            )
        stored = _U32.unpack_from(buffer, self.base_size - 4)[0]
        actual = crc32(buffer[: self.base_size - 4])
        if stored != actual:
            raise CorruptFileError(
                "checksum mismatch (stored %08x, computed %08x)" % (stored, actual)
            )
        self._section_counts = _section_value_counts(list(self.header))
        self._section_lengths = list(lengths)
        offsets: List[Optional[int]] = []
        offset = _V4_HEADER_END
        for n_values, length in zip(self._section_counts, lengths):
            if length != 4 * n_values:
                raise CorruptFileError(
                    "section declares %d bytes for %d uint32 values" % (length, n_values)
                )
            offsets.append(offset)
            offset += length
        self._section_offsets = offsets
        self._flat_sizes = flat_sizes
        flat_offsets: List[int] = []
        for length in flat_sizes:
            flat_offsets.append(offset)
            offset += length
        self._flat_offsets = flat_offsets

    def _open_legacy(self, buffer: memoryview, size: int) -> None:
        reader = _Reader(buffer, False, offset=8, end=size)
        self.header = tuple(reader.read_u32() for _ in range(11))
        self.base_size = size  # legacy formats are never followed by a tail
        self._section_counts = _section_value_counts(list(self.header))
        if not self.compact:
            # Raw sections are exactly 4 bytes per value: the whole table of
            # contents — and the trailing-byte check — falls out of the header.
            self._section_lengths = [4 * count for count in self._section_counts]
            offsets: List[Optional[int]] = []
            offset = _LEGACY_HEADER_END
            for length in self._section_lengths:
                offsets.append(offset)
                offset += length
            self._section_offsets = offsets
            if offset < size:
                raise CorruptFileError(
                    "%d trailing bytes after the last section" % (size - offset)
                )
        else:
            # PESTRIE2 boundaries are varint sums: discovered lazily, in
            # on-disk order, as sections materialise.
            self._section_lengths = [None] * 10
            self._section_offsets = [_LEGACY_HEADER_END] + [None] * 9

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_pointers(self) -> int:
        return self.header[0]

    @property
    def n_objects(self) -> int:
        return self.header[1]

    @property
    def n_groups(self) -> int:
        return self.header[2]

    @property
    def shape_counts(self) -> Tuple[int, ...]:
        """The eight header shape counts: per shape, ``(case1, case2)``."""
        return self.header[3:]

    @property
    def size(self) -> int:
        """Byte length of the image at open time (appended bytes excluded)."""
        return self._size

    @property
    def has_tail(self) -> bool:
        return self.base_size < self.size

    @property
    def buffer(self) -> memoryview:
        """The raw image as a zero-copy view (pins the mapping until released)."""
        # Every accessor that touches ``_buffer`` holds the lock so it can
        # never race a concurrent close() into slicing a released view: it
        # either runs first (and close() fails with BufferError until the
        # returned view is dropped) or sees ContainerClosedError.
        with self._lock:
            self._check_open()
            return self._buffer[:]

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def sections_materialized(self) -> int:
        """How many of the ten sections have been parsed so far."""
        with self._lock:
            return sum(1 for section in self._sections if section is not None)

    def _check_open(self) -> None:
        if self._closed:
            raise ContainerClosedError(
                "container%s is closed" % (" for %r" % self.path if self.path else "")
            )

    # ------------------------------------------------------------------
    # Section access
    # ------------------------------------------------------------------

    def section_view(self, index: int) -> memoryview:
        """Zero-copy window over section ``index``'s bytes (v1/v3/v4 only).

        The caller must release the view (or drop every reference) before
        :meth:`close`, or the close will fail with ``BufferError``.
        """
        with self._lock:
            self._check_open()
            offset, length = self._section_offsets[index], self._section_lengths[index]
            if offset is None or length is None:
                raise ValueError(
                    "PESTRIE2 section boundaries are varint sums; materialise "
                    "section_values(%d) instead" % index
                )
            return self._buffer[offset : offset + length]

    def flat_view(self, index: int) -> memoryview:
        """Zero-copy window over flat section ``index`` (``PESTRIE4`` only).

        Flat section order and sizes are fixed by the header counts (see
        ``repro.core.decoder.FLAT_SECTION_NAMES``); as with
        :meth:`section_view`, the caller must release the view before
        :meth:`close`.
        """
        with self._lock:
            self._check_open()
            if self.version != 4:
                raise ValueError(
                    "flat sections exist only in PESTRIE4 files (this is format v%d)"
                    % self.version
                )
            if not 0 <= index < len(FLAT_SECTION_NAMES):
                raise IndexError(
                    "flat section index %d out of range [0, %d)"
                    % (index, len(FLAT_SECTION_NAMES))
                )
            offset, length = self._flat_offsets[index], self._flat_sizes[index]
            return self._buffer[offset : offset + length]

    @property
    def has_flat(self) -> bool:
        """Whether this image carries the directly queryable flat sections."""
        return self.version == 4

    @property
    def flat_range(self) -> Tuple[int, int]:
        """``(start, end)`` byte span of the flat sections within the image."""
        if self.version != 4:
            raise ValueError("flat sections exist only in PESTRIE4 files")
        return self._flat_offsets[0], self.base_size - 4

    def section_values(self, index: int) -> List[int]:
        """Section ``index`` parsed to integers, decoding it on first touch."""
        if not 0 <= index < 10:
            raise IndexError("section index %d out of range [0, 10)" % index)
        section = self._sections[index]
        if section is not None:
            return section
        with self._lock:
            return self._materialize_section(index)

    def _materialize_section(self, index: int) -> List[int]:
        # Caller holds the lock.  PESTRIE2 boundaries are sequential, so
        # materialising section i first materialises 0..i-1.
        section = self._sections[index]
        if section is not None:
            return section
        self._check_open()
        if self._section_offsets[index] is None:
            self._materialize_section(index - 1)
        offset = self._section_offsets[index]
        count = self._section_counts[index]
        if self.version >= 3:
            end = offset + self._section_lengths[index]
        else:
            end = len(self._buffer)
        reader = _Reader(self._buffer, self.compact, offset=offset, end=end)
        with trace.span("store.materialize", section=SECTION_NAMES[index]):
            values = reader.read_ints(count)
        if self.version >= 3 and reader.offset != end:
            raise CorruptFileError(
                "section has %d unread trailing bytes" % (end - reader.offset)
            )
        if self.version == 2:
            self._section_lengths[index] = reader.offset - offset
            if index + 1 < 10:
                self._section_offsets[index + 1] = reader.offset
            elif reader.offset != len(self._buffer):
                raise CorruptFileError(
                    "%d trailing bytes after the last section"
                    % (len(self._buffer) - reader.offset)
                )
        self._sections[index] = values
        _BYTES_PARSED.inc(reader.offset - offset)
        _REGISTRY.counter("repro_store_sections_materialized_total",
                          section=SECTION_NAMES[index]).inc()
        # Attribute the parse to the query that forced it (no-op when no
        # cost context is active on this thread).
        add_parsed_bytes(reader.offset - offset)
        add_section()
        return values

    # ------------------------------------------------------------------
    # Payload-level lazy accessors
    # ------------------------------------------------------------------

    def timestamps(self) -> Tuple[List[Optional[int]], List[int]]:
        """``(pointer_ts, object_ts)``, parsed and validated on first touch."""
        with self._lock:
            if self._timestamps is None:
                raw = self._materialize_section(0)
                pointer_ts: List[Optional[int]] = [
                    None if ts == ABSENT else ts for ts in raw
                ]
                object_ts = self._materialize_section(1)
                self._origin_set = _validate_timestamps(
                    self.n_groups, pointer_ts, object_ts
                )
                self._timestamps = (pointer_ts, object_ts)
            return self._timestamps

    def rects(self) -> List[Tuple[Rect, bool]]:
        """The rectangle list, parsed and validated on first touch."""
        with self._lock:
            if self._rects is None:
                self.timestamps()  # origin set needed for Case-1 validation
                rects: List[Tuple[Rect, bool]] = []
                for case_index, case1 in ((0, True), (1, False)):
                    for shape_index, shape in enumerate(_SECTION_SHAPES):
                        values = self._materialize_section(2 + case_index * 4 + shape_index)
                        _decode_rect_section(shape, case1, values, self.compact, rects)
                _validate_rects(self.n_groups, rects, self._origin_set)
                self._rects = rects
            return self._rects

    def payload(self) -> PestriePayload:
        """Materialise everything into an eager, fully validated payload.

        This is the container-backed equivalent of the classic decode: on a
        fresh container it parses the sections in on-disk order (so hostile
        input fails exactly where the eager decoder failed); on a warm one
        it reuses every cached section.
        """
        # Force on-disk materialisation order before the composite accessors
        # (which parse timestamps first) so error precedence is preserved.
        for index in range(10):
            self.section_values(index)
        pointer_ts, object_ts = self.timestamps()
        return PestriePayload(
            n_pointers=self.n_pointers,
            n_objects=self.n_objects,
            n_groups=self.n_groups,
            pointer_ts=list(pointer_ts),
            object_ts=list(object_ts),
            rects=list(self.rects()),
        )

    # ------------------------------------------------------------------
    # Delta tail
    # ------------------------------------------------------------------

    def tail_records(self):
        """Decode the ``PESDELT1`` chain trailing the base image."""
        from ..delta.format import decode_records

        with self._lock:
            self._check_open()
            return decode_records(self._buffer, self.base_size,
                                  self.n_pointers, self.n_objects)

    def _tail_is_watermark_only(self) -> bool:
        """True when every trailing record is a fact-free epoch watermark.

        Called during :meth:`_build` (strict, ``allow_tail=False`` mode), so
        it reads the buffer directly rather than going through the public
        accessors.  A corrupt tail propagates its own
        :class:`CorruptFileError` — strict mode never ignores bad bytes.
        """
        from ..delta.format import decode_records

        if self.version < 3:
            return False
        records = decode_records(self._buffer, self.base_size,
                                 self.n_pointers, self.n_objects)
        return all(record.watermark for record in records)

    def append_tail(self, record: bytes) -> int:
        """Durably append one encoded DELTA record after the current image.

        This is the O(record) alternative to rewriting the whole file: the
        bytes are appended and fsynced in place.  The mapped view keeps its
        open-time length — reopen the container to read the record back.
        Returns the file size after the append.
        """
        with self._lock:
            self._check_open()
            if self.path is None:
                raise ValueError("append_tail needs a path-backed container")
            if self.version < 3:
                raise CorruptFileError(
                    "delta records require a PESTRIE3/PESTRIE4 base (file is format "
                    "v%d); re-encode it first" % self.version
                )
            with open(self.path, "ab") as stream:
                stream.write(record)
                stream.flush()
                os.fsync(stream.fileno())
                size = stream.tell()
            self._appended += len(record)
            return size

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the mapping.  Idempotent.

        Raises ``BufferError`` if a caller still holds an exported view
        (``buffer`` / ``section_view``) — release those first.  Sections
        already parsed stay usable (they are plain Python lists); anything
        unmaterialised raises :class:`ContainerClosedError` afterwards.
        """
        with self._lock:
            if self._closed:
                return
            if self._mmap is not None:
                # Fails with BufferError while exported views are alive;
                # our own base view must go first.
                self._buffer.release()
                try:
                    self._mmap.close()
                except BufferError:
                    # Re-arm our base view so the container stays usable and
                    # a later close (after the caller releases) can succeed.
                    self._buffer = memoryview(self._mmap)
                    raise
                self._file.close()
                _BYTES_MAPPED.inc(-self._size)
            else:
                self._buffer.release()
            self._buffer = None
            self._closed = True
            _OPEN_CONTAINERS.inc(-1)

    def __enter__(self) -> "Container":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort fd cleanup
        try:
            if not getattr(self, "_closed", True):
                self.close()
        except Exception:
            pass


class MappedBlob:
    """A raw mmap-backed byte blob for non-Pestrie persisted formats.

    The BitP/bzip baselines carry their own magic and checksums; what they
    share with the Pestrie path is the storage discipline — map the file,
    verify over a zero-copy view, account the bytes.  ``buffer`` pins the
    mapping; release it (or use the context manager) before ``close``.
    """

    def __init__(self, path: str):
        self.path = path
        self._file = open(path, "rb")
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size == 0:
                self._mmap = None
                self._buffer = memoryview(b"")
            else:
                self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
                self._buffer = memoryview(self._mmap)
        except BaseException:
            self._file.close()
            raise
        self.size = size
        self._closed = False
        _OPEN_CONTAINERS.inc()
        _BYTES_MAPPED.inc(size)

    @property
    def buffer(self) -> memoryview:
        if self._closed:
            raise ContainerClosedError("blob for %r is closed" % self.path)
        return self._buffer[:]

    def close(self) -> None:
        if self._closed:
            return
        self._buffer.release()
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                self._buffer = memoryview(self._mmap)
                raise
        self._file.close()
        self._closed = True
        _OPEN_CONTAINERS.inc(-1)
        _BYTES_MAPPED.inc(-self.size)

    def __enter__(self) -> "MappedBlob":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort fd cleanup
        try:
            if not getattr(self, "_closed", True):
                self.close()
        except Exception:
            pass
