"""Unified storage layer: mmap-backed containers, lazy section access.

Every layer that opens persisted bytes — the eager decoder, the pipeline
loaders, the sharded server, the delta appender, the baseline persistence,
the CLI — goes through this package.  See :mod:`repro.store.container` for
the access-layer semantics.

* :func:`open_container` — map a file, validate the skeleton once, parse
  nothing else.
* :func:`open_index` — a lazy query index: the zero-copy
  :class:`~repro.core.flat.FlatIndex` for ``PESTRIE4`` files, otherwise a
  :class:`~repro.core.query.PestrieIndex` whose structures materialise on
  first query.
* :func:`open_blob` — a raw mapped blob for non-Pestrie formats (BitP).
"""

from __future__ import annotations

from ..core.query import PestrieIndex
from .container import (
    SECTION_NAMES,
    Container,
    ContainerClosedError,
    MappedBlob,
)

__all__ = [
    "Container",
    "ContainerClosedError",
    "MappedBlob",
    "SECTION_NAMES",
    "open_blob",
    "open_container",
    "open_index",
]


def open_container(path: str, allow_tail: bool = True) -> Container:
    """Map ``path`` read-only and validate its skeleton (header, TOC, CRC)."""
    return Container.open(path, allow_tail=allow_tail)


def open_index(path: str, mode: str = "ptlist"):
    """Open ``path`` as a lazy query index; nothing is parsed until queried.

    ``PESTRIE4`` files (on little-endian hosts, default ``ptlist`` mode) are
    served by the zero-copy :class:`~repro.core.flat.FlatIndex`; everything
    else gets a lazy :class:`~repro.core.query.PestrieIndex`.  Files
    carrying appended DELTA records are rejected (serving the base while
    silently ignoring the tail would return pre-update answers) — load
    those with ``repro.delta.load_overlay(path, lazy=True)``.  Call
    ``index.close()`` (or keep the container from :func:`open_container`
    and close that) once the needed structures have materialised.
    """
    from ..core.flat import index_for_container

    container = Container.open(path, allow_tail=False)
    try:
        return index_for_container(container, mode=mode)
    except BaseException:
        container.close()
        raise


def open_blob(path: str) -> MappedBlob:
    """Map a raw persisted blob (no Pestrie framing) read-only."""
    return MappedBlob(path)
