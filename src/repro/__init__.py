"""repro — a faithful reimplementation of Pestrie (PLDI 2014).

Persistent pointer information: compact persistence and fast querying of
points-to and alias relations, after Xiao, Zhang, Zhou, and Zhang,
*Persistent Pointer Information*, PLDI 2014.

Quickstart::

    from repro import PointsToMatrix, persist, load_index

    pm = PointsToMatrix.from_pairs(3, 2, [(0, 0), (1, 0), (2, 1)])
    persist(pm, "points_to.pes")
    index = load_index("points_to.pes")
    assert index.is_alias(0, 1)
"""

from .core import (
    PestrieIndex,
    build_labeled_pestrie,
    build_pestrie,
    encode,
    index_from_bytes,
    load_index,
    persist,
)
from .matrix import (
    PointsToMatrix,
    SparseBitmap,
    object_equivalence,
    pointer_equivalence,
)
from .obs import get_registry, trace
from .serve import AliasService, ShardedIndex

__version__ = "1.0.0"

__all__ = [
    "AliasService",
    "PestrieIndex",
    "PointsToMatrix",
    "ShardedIndex",
    "SparseBitmap",
    "build_labeled_pestrie",
    "build_pestrie",
    "encode",
    "get_registry",
    "index_from_bytes",
    "load_index",
    "object_equivalence",
    "persist",
    "pointer_equivalence",
    "trace",
    "__version__",
]
