"""Flow-sensitive points-to analysis with strong updates.

Produces *constrained* facts ``p --l--> o`` (pointer ``p`` points to ``o``
at program point ``l``), the input shape Section 6.1 of the paper
canonicalises into the matrix via the ``(l, p) → p_l`` renaming.

Design (a Lhoták-style strong-update analysis, bounded by Andersen):

* an Andersen pass first fixes the interprocedural facts — parameter/return
  bindings, the global heap — so each function can then be analysed
  flow-sensitively in isolation;
* inside a function, a forward dataflow over the structured CFG tracks a
  variable environment and a heap environment, joined pointwise at merges;
* direct assignments to variables are always strong updates (a local is a
  single location; the IR has no address-of on variables);
* a store ``*p = q`` is a strong update when ``pts(p)`` is a singleton
  *unique* cell — an allocation site outside loops, in a non-recursive
  function with at most one static call site;
* call statements havoc the heap and the globals back to the Andersen
  solution (callees may touch both); the return value binds to the
  Andersen return set.

The result is sound and pointwise at least as precise as Andersen, strictly
more precise whenever a kill is observable — exactly the shape of results
the paper persists for its C subjects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..matrix.bitmap import SparseBitmap
from .andersen import AndersenResult, analyze as andersen_analyze
from .callgraph import CallGraph
from .ir import (
    Alloc,
    Call,
    Copy,
    FieldLoad,
    FieldStore,
    FuncRef,
    Function,
    If,
    IndirectCall,
    Load,
    Program,
    Return,
    Simple,
    Store,
    SymbolTable,
    While,
)

PointsTo = FrozenSet[int]
VarEnv = Dict[int, PointsTo]
HeapEnv = Dict[int, PointsTo]

_EMPTY: PointsTo = frozenset()


@dataclass
class _Node:
    """One CFG node wrapping a simple statement (or a no-op join point)."""

    id: int
    stmt: Optional[Simple]
    #: Label: pre-order index of the statement within its function, or -1.
    label: int = -1
    successors: List[int] = field(default_factory=list)


class _Cfg:
    """Structured-control-flow CFG for one function."""

    def __init__(self):
        self.nodes: List[_Node] = []

    def new_node(self, stmt: Optional[Simple], label: int = -1) -> _Node:
        node = _Node(id=len(self.nodes), stmt=stmt, label=label)
        self.nodes.append(node)
        return node


def _build_cfg(function: Function) -> Tuple[_Cfg, int]:
    """Build the CFG; return it and the entry node id."""
    cfg = _Cfg()
    entry = cfg.new_node(None)
    label_counter = [0]

    def build(body, preds: List[int]) -> List[int]:
        current = preds
        for stmt in body:
            if isinstance(stmt, If):
                joins: List[int] = []
                joins.extend(build(stmt.then_body, current))
                joins.extend(build(stmt.else_body, current))
                current = joins
            elif isinstance(stmt, While):
                head = cfg.new_node(None)
                for pred in current:
                    cfg.nodes[pred].successors.append(head.id)
                exits = build(stmt.body, [head.id])
                for node_id in exits:
                    cfg.nodes[node_id].successors.append(head.id)
                current = [head.id]  # loop may execute zero times
            else:
                node = cfg.new_node(stmt, label_counter[0])
                label_counter[0] += 1
                for pred in current:
                    cfg.nodes[pred].successors.append(node.id)
                current = [node.id]
        return current

    build(function.body, [entry.id])
    return cfg, entry.id


def _unique_sites(program: Program, callgraph: CallGraph) -> Set[str]:
    """Qualified names of allocation sites eligible for strong updates."""
    multi_called: Set[str] = set()
    recursive: Set[str] = set()
    for component in callgraph.topological_sccs():
        if len(component) > 1:
            recursive.update(component)
        else:
            name = component[0]
            if name in callgraph.callees(name):
                recursive.add(name)
    # A function whose address is taken may be invoked through any number
    # of indirect calls: never eligible for strong updates.
    address_taken: Set[str] = set()
    for function in program.functions.values():
        for stmt in function.simple_statements():
            if isinstance(stmt, FuncRef):
                address_taken.add(stmt.func)

    for name in program.functions:
        in_degree = len(callgraph.in_sites(name))
        if name == program.entry:
            in_degree += 1
        if in_degree > 1 or name in address_taken:
            multi_called.add(name)

    unique: Set[str] = set()

    def scan(body, fname: str, in_loop: bool) -> None:
        for stmt in body:
            if isinstance(stmt, If):
                scan(stmt.then_body, fname, in_loop)
                scan(stmt.else_body, fname, in_loop)
            elif isinstance(stmt, While):
                scan(stmt.body, fname, True)
            elif isinstance(stmt, Alloc) and not in_loop:
                unique.add("%s::%s" % (fname, stmt.site))

    for function in program.functions.values():
        if function.name in multi_called or function.name in recursive:
            continue
        scan(function.body, function.name, False)
    return unique


@dataclass(frozen=True)
class FlowFact:
    """One constrained fact: at point ``label`` of ``function``, the
    just-defined ``variable`` points to exactly ``objects``."""

    function: str
    label: int
    variable: int
    objects: PointsTo


@dataclass
class FlowSensitiveResult:
    symbols: SymbolTable
    andersen: AndersenResult
    facts: List[FlowFact]
    #: Variables never redefined get their entry fact here (function, var).
    entry_facts: List[Tuple[str, int, PointsTo]]

    def fact_count(self) -> int:
        return len(self.facts) + len(self.entry_facts)


def _as_frozen(bitmap: SparseBitmap) -> PointsTo:
    return frozenset(bitmap)


def analyze(program: Program, symbols: Optional[SymbolTable] = None) -> FlowSensitiveResult:
    """Run the flow-sensitive analysis over every function."""
    if symbols is None:
        symbols = SymbolTable(program)
    andersen = andersen_analyze(program, symbols)
    callgraph = CallGraph(program)
    unique = _unique_sites(program, callgraph)
    unique_ids = {symbols.site_ids[name] for name in unique if name in symbols.site_ids}

    andersen_var: List[PointsTo] = [_as_frozen(pts) for pts in andersen.var_pts]
    andersen_obj: List[PointsTo] = [_as_frozen(pts) for pts in andersen.obj_pts]
    global_ids = {symbols.variable(None, name) for name in program.globals}

    facts: List[FlowFact] = []
    entry_facts: List[Tuple[str, int, PointsTo]] = []

    for function in program.functions.values():
        fname = function.name
        cfg, entry_id = _build_cfg(function)

        def var_id(name: str) -> int:
            return symbols.variable(fname, name)

        # Entry state: parameters and globals at the Andersen solution,
        # other locals undefined (empty).  The heap environment is a sparse
        # *delta* from the Andersen heap: a site appears only while a strong
        # update holds it below its Andersen value; absent sites read as
        # ``andersen_obj[site]``.
        entry_env: VarEnv = {}
        for param in function.params:
            entry_env[var_id(param)] = andersen_var[var_id(param)]
        for gid in global_ids:
            entry_env[gid] = andersen_var[gid]
        entry_heap: HeapEnv = {}

        in_env: Dict[int, Optional[VarEnv]] = {node.id: None for node in cfg.nodes}
        in_heap: Dict[int, Optional[HeapEnv]] = {node.id: None for node in cfg.nodes}
        in_env[entry_id] = dict(entry_env)
        in_heap[entry_id] = dict(entry_heap)

        worklist = [entry_id]
        pending = {entry_id}
        # Post-state per statement label for the defined variable.
        def_state: Dict[Tuple[int, int], PointsTo] = {}
        defined_vars: Set[int] = set()

        def transfer(node: _Node, env: VarEnv, heap: HeapEnv) -> Tuple[VarEnv, HeapEnv]:
            stmt = node.stmt
            if stmt is None:
                return env, heap
            env = dict(env)
            if isinstance(stmt, Alloc):
                target = var_id(stmt.target)
                site = symbols.site(fname, stmt.site)
                env[target] = frozenset((site,))
                if site in unique_ids and andersen_obj[site]:
                    heap = dict(heap)
                    heap[site] = _EMPTY  # a unique cell is born empty
                _record(node, target, env[target])
            elif isinstance(stmt, Copy):
                target = var_id(stmt.target)
                env[target] = env.get(var_id(stmt.source), _EMPTY)
                _record(node, target, env[target])
            elif isinstance(stmt, (Load, FieldLoad)):
                target = var_id(stmt.target)
                merged: Set[int] = set()
                for obj in env.get(var_id(stmt.source), _EMPTY):
                    merged.update(heap.get(obj, andersen_obj[obj]))
                env[target] = frozenset(merged)
                _record(node, target, env[target])
            elif isinstance(stmt, (Store, FieldStore)):
                heap = dict(heap)
                base = env.get(var_id(stmt.target), _EMPTY)
                value = env.get(var_id(stmt.source), _EMPTY)
                if len(base) == 1 and next(iter(base)) in unique_ids:
                    obj = next(iter(base))
                    if value == andersen_obj[obj]:
                        heap.pop(obj, None)
                    else:
                        heap[obj] = value  # strong update: kill
                else:
                    for obj in base:
                        current = heap.get(obj)
                        if current is None:
                            continue  # already at the Andersen ceiling
                        merged = current | value
                        if merged == andersen_obj[obj]:
                            del heap[obj]
                        else:
                            heap[obj] = merged
            elif isinstance(stmt, FuncRef):
                target = var_id(stmt.target)
                env[target] = frozenset((symbols.function_object(stmt.func),))
                _record(node, target, env[target])
            elif isinstance(stmt, (Call, IndirectCall)):
                # Callee effects: heap and globals havoc to Andersen.
                heap = {}
                for gid in global_ids:
                    env[gid] = andersen_var[gid]
                if stmt.target is not None:
                    target = var_id(stmt.target)
                    env[target] = andersen_var[target]
                    _record(node, target, env[target])
            elif isinstance(stmt, Return):
                pass
            return env, heap

        def _record(node: _Node, variable: int, objects: PointsTo) -> None:
            key = (node.label, variable)
            previous = def_state.get(key, _EMPTY)
            def_state[key] = previous | objects
            defined_vars.add(variable)

        while worklist:
            node_id = worklist.pop()
            pending.discard(node_id)
            node = cfg.nodes[node_id]
            env, heap = transfer(node, in_env[node_id] or {}, in_heap[node_id] or {})
            for succ in node.successors:
                changed = False
                if in_env[succ] is None:
                    in_env[succ] = dict(env)
                    in_heap[succ] = dict(heap)
                    changed = True
                else:
                    succ_env = in_env[succ]
                    for var, pts in env.items():
                        merged = succ_env.get(var, _EMPTY) | pts
                        if merged != succ_env.get(var, _EMPTY):
                            succ_env[var] = merged
                            changed = True
                    # Heap join under the delta encoding: a site missing on
                    # either side is at the Andersen ceiling, so the join is
                    # the ceiling too — only sites present in both survive.
                    succ_heap = in_heap[succ]
                    for obj in [o for o in succ_heap if o not in heap]:
                        del succ_heap[obj]
                        changed = True
                    for obj, pts in heap.items():
                        current = succ_heap.get(obj)
                        if current is None:
                            continue
                        merged = current | pts
                        if merged == andersen_obj[obj]:
                            del succ_heap[obj]
                            changed = True
                        elif merged != current:
                            succ_heap[obj] = merged
                            changed = True
                if changed and succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)

        for (label, variable), objects in sorted(def_state.items()):
            facts.append(FlowFact(function=fname, label=label, variable=variable,
                                  objects=objects))
        # Parameters and globals read but never redefined in this function
        # still carry their entry facts.
        for variable, objects in entry_env.items():
            if variable not in defined_vars and objects:
                entry_facts.append((fname, variable, objects))

    return FlowSensitiveResult(
        symbols=symbols, andersen=andersen, facts=facts, entry_facts=entry_facts
    )
