"""Offline constraint-graph preprocessing for Andersen's analysis.

Implements the classic offline optimisation the paper cites as prior
equivalence-detection work (Rountev & Chandra's offline variable
substitution; Hardekopf & Lin's cycle collapsing): variables forming a
cycle of *static* copy constraints must end with identical points-to sets,
so the whole strongly connected component can be solved as one node and the
solution shared afterwards.

This is the "before the analysis" face of the same equivalence property
Pestrie exploits *after* the analysis (Section 2.1) — the tests assert the
collapsed solve is bit-for-bit equal to the plain one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple


def copy_graph_sccs(n_vars: int, copies: Iterable[Tuple[int, int]]) -> List[int]:
    """Map every variable to its copy-cycle representative.

    ``copies`` are ``(source, target)`` pairs.  Variables in the same SCC of
    the copy graph get the same representative (the smallest member);
    acyclic variables represent themselves.  Iterative Tarjan.
    """
    successors: List[List[int]] = [[] for _ in range(n_vars)]
    for source, target in copies:
        if source != target:
            successors[source].append(target)

    index: List[int] = [-1] * n_vars
    lowlink: List[int] = [0] * n_vars
    on_stack: List[bool] = [False] * n_vars
    stack: List[int] = []
    representative: List[int] = list(range(n_vars))
    counter = 0

    for root in range(n_vars):
        if index[root] != -1:
            continue
        work: List[Tuple[int, Iterator[int]]] = [(root, iter(successors[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if index[child] == -1:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(successors[child])))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                rep = min(component)
                for member in component:
                    representative[member] = rep
    return representative


def collapse(
    representative: List[int],
    allocs: Iterable[Tuple[int, int]],
    copies: Iterable[Tuple[int, int]],
    loads: Iterable[Tuple[int, int]],
    stores: Iterable[Tuple[int, int]],
) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]], Set[Tuple[int, int]], Set[Tuple[int, int]]]:
    """Rewrite all constraints onto representatives, dropping self-copies."""
    rep = representative

    def remap(pairs: Iterable[Tuple[int, int]], both: bool) -> Set[Tuple[int, int]]:
        result: Set[Tuple[int, int]] = set()
        for a, b in pairs:
            mapped = (rep[a], rep[b]) if both else (rep[a], b)
            result.add(mapped)
        return result

    collapsed_allocs = {(rep[var], site) for var, site in allocs}
    collapsed_copies = {
        (rep[src], rep[dst]) for src, dst in copies if rep[src] != rep[dst]
    }
    collapsed_loads = {(rep[dst], rep[src]) for dst, src in loads}
    collapsed_stores = {(rep[dst], rep[src]) for dst, src in stores}
    del remap
    return collapsed_allocs, collapsed_copies, collapsed_loads, collapsed_stores


def collapse_statistics(representative: List[int]) -> Dict[str, int]:
    """How much the presolve shrank the variable universe."""
    n_vars = len(representative)
    n_reps = len(set(representative))
    return {
        "variables": n_vars,
        "representatives": n_reps,
        "collapsed": n_vars - n_reps,
    }
