"""Pointer-analysis substrate: IR, frontend, and four analyses.

The substrate produces the constrained points-to results that Section 6 of
the paper canonicalises into the matrix Pestrie persists.
"""

from . import andersen, context_sensitive, field_andersen, flow_sensitive, steensgaard
from .ondemand import OnDemandAndersen
from .callgraph import CallGraph, CallSite
from .correlate import Archive, check_correlation, load_archive, save_archive
from .library import (
    ClientAnalysis,
    LibrarySummary,
    analyze_client,
    analyze_library,
    load_library,
    merge_programs,
    save_library,
)
from .ir import (
    Alloc,
    Call,
    Copy,
    Function,
    If,
    Load,
    Program,
    Return,
    Store,
    SymbolTable,
    While,
)
from .parser import ParseError, format_program, parse_program
from .transform import (
    NamedMatrix,
    PathFact,
    context_sensitive_to_matrix,
    flow_sensitive_to_matrix,
    merge_context,
    path_sensitive_to_matrix,
)

__all__ = [
    "Alloc",
    "Archive",
    "Call",
    "CallGraph",
    "ClientAnalysis",
    "LibrarySummary",
    "CallSite",
    "Copy",
    "Function",
    "If",
    "Load",
    "NamedMatrix",
    "OnDemandAndersen",
    "ParseError",
    "PathFact",
    "Program",
    "Return",
    "Store",
    "SymbolTable",
    "While",
    "analyze_client",
    "analyze_library",
    "andersen",
    "field_andersen",
    "check_correlation",
    "context_sensitive",
    "context_sensitive_to_matrix",
    "flow_sensitive",
    "flow_sensitive_to_matrix",
    "format_program",
    "load_archive",
    "load_library",
    "merge_programs",
    "merge_context",
    "parse_program",
    "path_sensitive_to_matrix",
    "save_archive",
    "save_library",
    "steensgaard",
]
