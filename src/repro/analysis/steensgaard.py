"""Steensgaard-style unification-based points-to analysis.

The almost-linear-time, less precise cousin of Andersen's analysis: every
assignment unifies equivalence classes instead of adding subset edges.
Each class has at most one pointee class; unifying two classes recursively
unifies their pointees.  Allocation sites live in classes too, so the final
points-to set of a variable is every site in its class's pointee class.

Included as the coarse end of the precision spectrum: its output feeds the
same Pestrie pipeline and maximises the equivalence property (whole classes
share one points-to set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..matrix.points_to import PointsToMatrix
from .ir import (
    Alloc,
    Call,
    Copy,
    FieldLoad,
    FieldStore,
    FuncRef,
    IndirectCall,
    Load,
    Program,
    Return,
    Store,
    SymbolTable,
)


class _UnionFind:
    def __init__(self):
        self.parent: List[int] = []
        self.rank: List[int] = []

    def make(self) -> int:
        self.parent.append(len(self.parent))
        self.rank.append(0)
        return len(self.parent) - 1

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return ra


@dataclass
class SteensgaardResult:
    symbols: SymbolTable
    #: Representative class per variable id.
    var_class: List[int]
    #: Sites contained in each class (by representative at solve end).
    sites_in_class: Dict[int, List[int]]
    #: Pointee class per class representative, if any.
    pointee: Dict[int, int]

    def to_matrix(self) -> PointsToMatrix:
        matrix = PointsToMatrix(
            self.symbols.n_variables,
            self.symbols.n_sites,
            pointer_names=self.symbols.variable_names(),
            object_names=self.symbols.site_names(),
        )
        for var in range(self.symbols.n_variables):
            pointee = self.pointee.get(self.var_class[var])
            if pointee is None:
                continue
            for site in self.sites_in_class.get(pointee, ()):
                matrix.add(var, site)
        return matrix


class _Solver:
    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols
        self.uf = _UnionFind()
        # Node layout: one union-find element per variable, then per site.
        self.var_node = [self.uf.make() for _ in range(symbols.n_variables)]
        self.site_node = [self.uf.make() for _ in range(symbols.n_sites)]
        self.pointee: Dict[int, Optional[int]] = {}
        #: Lambda signatures per class root: (param nodes, return node).
        #: Attached to function-object classes; unified pointwise on join.
        self.signature: Dict[int, tuple] = {}

    def _get_pointee(self, node: int) -> Optional[int]:
        return self.pointee.get(self.uf.find(node))

    def _set_pointee(self, node: int, target: int) -> None:
        root = self.uf.find(node)
        existing = self.pointee.get(root)
        if existing is None:
            self.pointee[root] = self.uf.find(target)
        else:
            self.join(existing, target)

    def join(self, a: int, b: int) -> None:
        """Unify two classes and, recursively, their pointees/signatures."""
        ra, rb = self.uf.find(a), self.uf.find(b)
        if ra == rb:
            return
        pa, pb = self.pointee.get(ra), self.pointee.get(rb)
        sa, sb = self.signature.pop(ra, None), self.signature.pop(rb, None)
        self.pointee.pop(ra, None)
        self.pointee.pop(rb, None)
        root = self.uf.union(ra, rb)
        if pa is not None and pb is not None:
            self.pointee[root] = self.uf.find(pa)
            self.join(pa, pb)
        elif pa is not None or pb is not None:
            self.pointee[root] = self.uf.find(pa if pa is not None else pb)
        if sa is not None and sb is not None:
            self.signature[root] = sa
            for pa_node, pb_node in zip(sa[0], sb[0]):
                self.join(pa_node, pb_node)
            self.join(sa[1], sb[1])
        elif sa is not None or sb is not None:
            self.signature[root] = sa if sa is not None else sb

    def _signature_of(self, node: int, arity: int) -> tuple:
        """Get (or create a fresh placeholder) lambda signature."""
        root = self.uf.find(node)
        existing = self.signature.get(root)
        if existing is None:
            existing = (tuple(self.uf.make() for _ in range(arity)), self.uf.make())
            self.signature[root] = existing
        return existing

    def assign(self, dst: int, src: int) -> None:
        """``dst = src``: unify the pointees of both sides."""
        p_src = self._get_pointee(src)
        if p_src is None:
            # Give src a fresh pointee class so future joins line up.
            fresh = self.uf.make()
            self.pointee[self.uf.find(src)] = fresh
            p_src = fresh
        self._set_pointee(dst, p_src)

    def _bind_function(self, program: Program, return_vars, func: str, site: int) -> None:
        """Attach ``func``'s real parameter/return nodes to its object's
        lambda signature (unifying with any placeholder already there)."""
        function = program.functions[func]
        params, ret = self._signature_of(site, len(function.params))
        for param_node, param_name in zip(params, function.params):
            self.join(param_node, self.var_node[self.symbols.variable(func, param_name)])
        for returned in return_vars.get(func, ()):
            self.join(ret, self.var_node[returned])

    def solve(self, program: Program) -> SteensgaardResult:
        symbols = self.symbols
        return_vars: Dict[str, List[int]] = {}
        for function in program.functions.values():
            for stmt in function.simple_statements():
                if isinstance(stmt, Return) and stmt.value is not None:
                    return_vars.setdefault(function.name, []).append(
                        symbols.variable(function.name, stmt.value)
                    )
        for function in program.functions.values():
            fname = function.name
            for stmt in function.simple_statements():
                if isinstance(stmt, Alloc):
                    var = self.var_node[symbols.variable(fname, stmt.target)]
                    site = self.site_node[symbols.site(fname, stmt.site)]
                    self._set_pointee(var, site)
                elif isinstance(stmt, Copy):
                    self.assign(
                        self.var_node[symbols.variable(fname, stmt.target)],
                        self.var_node[symbols.variable(fname, stmt.source)],
                    )
                elif isinstance(stmt, (Load, FieldLoad)):
                    src = self.var_node[symbols.variable(fname, stmt.source)]
                    p_src = self._get_pointee(src)
                    if p_src is None:
                        p_src = self.uf.make()
                        self.pointee[self.uf.find(src)] = p_src
                    self.assign(
                        self.var_node[symbols.variable(fname, stmt.target)], p_src
                    )
                elif isinstance(stmt, (Store, FieldStore)):
                    dst = self.var_node[symbols.variable(fname, stmt.target)]
                    p_dst = self._get_pointee(dst)
                    if p_dst is None:
                        p_dst = self.uf.make()
                        self.pointee[self.uf.find(dst)] = p_dst
                    self.assign(
                        p_dst, self.var_node[symbols.variable(fname, stmt.source)]
                    )
                elif isinstance(stmt, Call):
                    callee = program.functions[stmt.callee]
                    for param, arg in zip(callee.params, stmt.args):
                        self.assign(
                            self.var_node[symbols.variable(stmt.callee, param)],
                            self.var_node[symbols.variable(fname, arg)],
                        )
                    if stmt.target is not None:
                        target = self.var_node[symbols.variable(fname, stmt.target)]
                        for returned in return_vars.get(stmt.callee, ()):
                            self.assign(target, self.var_node[returned])
                elif isinstance(stmt, FuncRef):
                    site = self.site_node[symbols.function_object(stmt.func)]
                    self._bind_function(program, return_vars, stmt.func, site)
                    self._set_pointee(
                        self.var_node[symbols.variable(fname, stmt.target)], site
                    )
                elif isinstance(stmt, IndirectCall):
                    fp = self.var_node[symbols.variable(fname, stmt.pointer)]
                    pointee = self._get_pointee(fp)
                    if pointee is None:
                        pointee = self.uf.make()
                        self.pointee[self.uf.find(fp)] = pointee
                    params, ret = self._signature_of(pointee, len(stmt.args))
                    for param, arg in zip(params, stmt.args):
                        self.assign(param, self.var_node[symbols.variable(fname, arg)])
                    if stmt.target is not None:
                        self.assign(
                            self.var_node[symbols.variable(fname, stmt.target)], ret
                        )

        var_class = [self.uf.find(self.var_node[v]) for v in range(symbols.n_variables)]
        sites_in_class: Dict[int, List[int]] = {}
        for site in range(symbols.n_sites):
            sites_in_class.setdefault(self.uf.find(self.site_node[site]), []).append(site)
        pointee = {root: self.uf.find(target) for root, target in self.pointee.items()}
        # Re-root pointee keys: entries may be stale after later unions.
        canonical: Dict[int, int] = {}
        for root, target in pointee.items():
            canonical[self.uf.find(root)] = self.uf.find(target)
        return SteensgaardResult(
            symbols=symbols,
            var_class=var_class,
            sites_in_class=sites_in_class,
            pointee=canonical,
        )


def analyze(program: Program, symbols: SymbolTable | None = None) -> SteensgaardResult:
    """Run the unification-based analysis."""
    if symbols is None:
        symbols = SymbolTable(program)
    return _Solver(symbols).solve(program)
