"""Variable correlation across analysis cycles (Section 6.2).

A persistent file maps variables to integers, so later analysis runs must
reproduce the *same* mapping to interpret it.  The paper saves, alongside
the pointer information: the IR, the variable-name-to-integer mapping, and
the call graph with its call-edge numbering.  This module implements that
archive: a directory holding

* ``program.ir``       — the IR pretty-printed back to parseable source;
* ``variables.json``   — pointer-name → row and object-name → column maps;
* ``call_edges.json``  — call-edge label → id (context naming stability);
* ``points_to.pes``    — the Pestrie persistent file itself.

``load_archive`` restores all four; ``Archive.pointer_id`` then resolves
source-level queries like ``ListPointsTo(c, p)`` against the stable ids.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.pipeline import load_index, persist
from ..core.query import PestrieIndex
from ..matrix.points_to import PointsToMatrix
from .callgraph import CallGraph
from .ir import Program
from .parser import format_program, parse_program

_PROGRAM_FILE = "program.ir"
_VARIABLES_FILE = "variables.json"
_CALL_EDGES_FILE = "call_edges.json"
_MATRIX_FILE = "points_to.pes"


@dataclass
class Archive:
    """A loaded analysis archive: IR + naming + query index."""

    program: Program
    pointer_index: Dict[str, int]
    object_index: Dict[str, int]
    call_edge_ids: Dict[str, int]
    index: PestrieIndex

    def pointer_id(self, name: str) -> int:
        return self.pointer_index[name]

    def object_id(self, name: str) -> int:
        return self.object_index[name]

    # Source-level query veneer.

    def is_alias(self, p: str, q: str) -> bool:
        return self.index.is_alias(self.pointer_index[p], self.pointer_index[q])

    def list_points_to(self, p: str) -> list:
        names = _invert(self.object_index)
        return sorted(names[obj] for obj in self.index.list_points_to(self.pointer_index[p]))

    def list_pointed_by(self, o: str) -> list:
        names = _invert(self.pointer_index)
        return sorted(names[p] for p in self.index.list_pointed_by(self.object_index[o]))

    def list_aliases(self, p: str) -> list:
        names = _invert(self.pointer_index)
        return sorted(names[q] for q in self.index.list_aliases(self.pointer_index[p]))


def _invert(index: Dict[str, int]) -> Dict[int, str]:
    return {value: key for key, value in index.items()}


def save_archive(
    directory: str,
    program: Program,
    matrix: PointsToMatrix,
    pointer_index: Dict[str, int],
    object_index: Dict[str, int],
    order: str = "hub",
    compact: bool = False,
) -> None:
    """Persist a full analysis cycle: IR, naming, call graph, pointer info.

    ``pointer_index``/``object_index`` are the name tables produced by the
    Section 6.1 transforms (or built from a :class:`SymbolTable`).
    """
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, _PROGRAM_FILE), "w") as stream:
        stream.write(format_program(program))
    with open(os.path.join(directory, _VARIABLES_FILE), "w") as stream:
        json.dump({"pointers": pointer_index, "objects": object_index}, stream)
    callgraph = CallGraph(program)
    call_edge_ids = {site.label: index for site, index in callgraph.site_ids.items()}
    with open(os.path.join(directory, _CALL_EDGES_FILE), "w") as stream:
        json.dump(call_edge_ids, stream)
    persist(matrix, os.path.join(directory, _MATRIX_FILE), order=order, compact=compact)


def load_archive(directory: str) -> Archive:
    """Reload a saved analysis cycle without re-running any analysis."""
    with open(os.path.join(directory, _PROGRAM_FILE)) as stream:
        program = parse_program(stream.read())
    with open(os.path.join(directory, _VARIABLES_FILE)) as stream:
        naming = json.load(stream)
    with open(os.path.join(directory, _CALL_EDGES_FILE)) as stream:
        call_edge_ids = json.load(stream)
    index = load_index(os.path.join(directory, _MATRIX_FILE))
    return Archive(
        program=program,
        pointer_index=naming["pointers"],
        object_index=naming["objects"],
        call_edge_ids=call_edge_ids,
        index=index,
    )


def check_correlation(first: Archive, second: Archive) -> bool:
    """True when two archives agree on every shared name's integer id —
    the invariant that makes persisted results reusable across runs."""
    for name, value in first.pointer_index.items():
        if second.pointer_index.get(name, value) != value:
            return False
    for name, value in first.object_index.items():
        if second.object_index.get(name, value) != value:
            return False
    for name, value in first.call_edge_ids.items():
        if second.call_edge_ids.get(name, value) != value:
            return False
    return True


def registry_path(directory: str) -> Optional[str]:
    """The variables.json path if ``directory`` is an archive, else None."""
    path = os.path.join(directory, _VARIABLES_FILE)
    return path if os.path.exists(path) else None
