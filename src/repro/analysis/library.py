"""Library pre-analysis and client-time reuse — the paper's future work.

Section 9: "The main focus of our future work is applying persistence
technique to pre-compute pointer information for libraries in order to
reduce the cost of points-to analysis for framework-heavy programs", and
Section 1's second scenario: persist the points-to relations of a library
that are *independent of clients*, so client analyses don't re-derive them.

The key observation making this sound: Andersen's analysis is monotone in
its constraint set.  A library analysed alone yields facts that are a
subset of any client+library fixpoint, so a client analysis *seeded* with
the persisted library solution converges to exactly the from-scratch
result — it just starts much closer to the fixpoint (tests assert
equality; the benchmark measures the saved work).

Workflow::

    summary = analyze_library(lib_program)          # once, offline
    save_library(summary, "stdlib.lib/")            # persist (Pestrie file)

    summary = load_library("stdlib.lib/")           # per client build
    result = analyze_client(app_program, summary)   # seeded Andersen
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.pipeline import load_index, persist
from .andersen import AndersenResult, analyze as andersen_analyze
from .ir import Function, Program, Return, SymbolTable
from .parser import format_program, parse_program

_PROGRAM_FILE = "library.ir"
_NAMES_FILE = "names.json"
_MATRIX_FILE = "points_to.pes"


@dataclass
class LibrarySummary:
    """A pre-analysed library: its IR plus the client-independent facts."""

    program: Program
    #: Qualified variable name -> frozenset of qualified site names.
    var_facts: Dict[str, frozenset]
    #: Qualified site name -> frozenset of qualified site names (cells).
    obj_facts: Dict[str, frozenset]

    def fact_count(self) -> int:
        return sum(len(objects) for objects in self.var_facts.values()) + sum(
            len(objects) for objects in self.obj_facts.values()
        )


def analyze_library(program: Program) -> LibrarySummary:
    """Analyse a library on its own (no client, any function may be dead).

    The library's entry point is irrelevant; the analysis covers every
    function.  All derived facts are client-independent by monotonicity.
    """
    result = andersen_analyze(program)
    symbols = result.symbols
    variable_names = symbols.variable_names()
    site_names = symbols.site_names()
    var_facts = {}
    for var, pts in enumerate(result.var_pts):
        if pts:
            var_facts[variable_names[var]] = frozenset(site_names[o] for o in pts)
    obj_facts = {}
    for site, pts in enumerate(result.obj_pts):
        if pts:
            obj_facts[site_names[site]] = frozenset(site_names[o] for o in pts)
    return LibrarySummary(program=program, var_facts=var_facts, obj_facts=obj_facts)


def merge_programs(client: Program, library: Program) -> Program:
    """One whole program: client + library (clients call library directly).

    Function names must be disjoint; globals shared by name.
    """
    merged = Program(entry=client.entry)
    merged.globals = list(dict.fromkeys(client.globals + library.globals))
    for function in library.functions.values():
        merged.add_function(function)
    for function in client.functions.values():
        if function.name in merged.functions:
            raise ValueError("client redefines library function %r" % function.name)
        merged.add_function(function)
    merged.validate()
    return merged


@dataclass
class ClientAnalysis:
    """A client analysis seeded from a library summary."""

    result: AndersenResult
    merged: Program
    #: Facts injected from the summary (how much work was pre-paid).
    seeded_facts: int


def analyze_client(client: Program, summary: LibrarySummary) -> ClientAnalysis:
    """Analyse ``client`` against the pre-analysed library.

    The merged program is solved with the library facts pre-loaded, so the
    fixpoint iteration only derives the genuinely client-dependent part.
    The outcome equals a from-scratch analysis of the merged program.
    """
    merged = merge_programs(client, summary.program)
    symbols = SymbolTable(merged)
    seeds_vars: List[Tuple[int, int]] = []
    seeds_objs: List[Tuple[int, int]] = []
    for name, objects in summary.var_facts.items():
        var = symbols.variable_ids.get(name)
        if var is None:
            continue
        for obj_name in objects:
            site = symbols.site_ids.get(obj_name)
            if site is not None:
                seeds_vars.append((var, site))
    for name, objects in summary.obj_facts.items():
        cell = symbols.site_ids.get(name)
        if cell is None:
            continue
        for obj_name in objects:
            site = symbols.site_ids.get(obj_name)
            if site is not None:
                seeds_objs.append((cell, site))

    result = andersen_analyze(merged, symbols, seed_var_facts=seeds_vars,
                              seed_obj_facts=seeds_objs)
    return ClientAnalysis(
        result=result,
        merged=merged,
        seeded_facts=len(seeds_vars) + len(seeds_objs),
    )


# ----------------------------------------------------------------------
# Persistence of summaries
# ----------------------------------------------------------------------

def save_library(summary: LibrarySummary, directory: str) -> None:
    """Persist a library summary: IR, name tables, and a Pestrie file.

    The Pestrie file holds the variable facts (the queryable part); the
    cell contents ride along in the JSON name table.
    """
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, _PROGRAM_FILE), "w") as stream:
        stream.write(format_program(summary.program))

    pointer_names = sorted(summary.var_facts)
    object_names = sorted(
        {name for objects in summary.var_facts.values() for name in objects}
        | set(summary.obj_facts)
        | {name for objects in summary.obj_facts.values() for name in objects}
    )
    pointer_index = {name: i for i, name in enumerate(pointer_names)}
    object_index = {name: i for i, name in enumerate(object_names)}

    from ..matrix.points_to import PointsToMatrix

    matrix = PointsToMatrix(len(pointer_names), len(object_names))
    for name, objects in summary.var_facts.items():
        for obj_name in objects:
            matrix.add(pointer_index[name], object_index[obj_name])
    persist(matrix, os.path.join(directory, _MATRIX_FILE))

    with open(os.path.join(directory, _NAMES_FILE), "w") as stream:
        json.dump(
            {
                "pointers": pointer_index,
                "objects": object_index,
                "cells": {
                    name: sorted(objects) for name, objects in summary.obj_facts.items()
                },
            },
            stream,
        )


def load_library(directory: str) -> LibrarySummary:
    """Reload a persisted library summary without re-analysing anything."""
    with open(os.path.join(directory, _PROGRAM_FILE)) as stream:
        # A library has no entry point; skip whole-program validation.
        program = parse_program(stream.read(), validate=False)
        if program.functions:
            program.entry = next(iter(program.functions))
    with open(os.path.join(directory, _NAMES_FILE)) as stream:
        names = json.load(stream)
    index = load_index(os.path.join(directory, _MATRIX_FILE))
    object_names = {value: key for key, value in names["objects"].items()}
    var_facts = {}
    for name, pointer in names["pointers"].items():
        objects = frozenset(object_names[o] for o in index.list_points_to(pointer))
        if objects:
            var_facts[name] = objects
    obj_facts = {
        name: frozenset(objects) for name, objects in names["cells"].items()
    }
    return LibrarySummary(program=program, var_facts=var_facts, obj_facts=obj_facts)
