"""Andersen-style inclusion-based points-to analysis.

Flow- and context-insensitive subset constraints solved to a fixed point
with a difference-propagation worklist over a constraint graph whose
points-to sets are sparse bitmaps: each node tracks the facts gained since
it was last processed and only that delta is pushed along edges.  The
constraint forms:

* ``p = alloc S``   →  ``S ∈ pts(p)``
* ``p = q``         →  ``pts(q) ⊆ pts(p)``          (copy edge q → p)
* ``p = *q``        →  ``∀o ∈ pts(q): pts(o) ⊆ pts(p)``
* ``*p = q``        →  ``∀o ∈ pts(p): pts(q) ⊆ pts(o)``
* calls/returns     →  copy edges between arguments/parameters/returns

Objects (allocation sites) have points-to sets of their own — the contents
of the abstract cell — so loads and stores add copy edges lazily as the
pointer sets grow.  This is the baseline precision the paper's "most
imprecise" persisted results come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..matrix.bitmap import SparseBitmap
from ..matrix.points_to import PointsToMatrix
from .ir import (
    Alloc,
    Call,
    Copy,
    FieldLoad,
    FieldStore,
    FuncRef,
    IndirectCall,
    Load,
    Program,
    Return,
    Store,
    SymbolTable,
)


@dataclass
class AndersenResult:
    """Solved constraint system plus the id universe it is expressed over."""

    symbols: SymbolTable
    #: Per-variable points-to sets over site ids.
    var_pts: List[SparseBitmap]
    #: Per-site (abstract cell) points-to sets over site ids.
    obj_pts: List[SparseBitmap]
    iterations: int = 0

    def to_matrix(self) -> PointsToMatrix:
        """The normalised points-to matrix over (variables × sites)."""
        matrix = PointsToMatrix(
            self.symbols.n_variables,
            self.symbols.n_sites,
            pointer_names=self.symbols.variable_names(),
            object_names=self.symbols.site_names(),
        )
        for pointer, pts in enumerate(self.var_pts):
            for obj in pts:
                matrix.add(pointer, obj)
        return matrix

    def pts_of(self, function: str, name: str) -> Set[int]:
        return set(self.var_pts[self.symbols.variable(function, name)])

    def indirect_call_targets(self) -> Dict[Tuple[str, int], Set[str]]:
        """The induced call graph of indirect calls: ``(caller, icall index
        within the caller) -> possible callee names``."""
        fn_sites = self.symbols.function_object_sites()
        targets: Dict[Tuple[str, int], Set[str]] = {}
        for function in self.symbols.program.functions.values():
            position = 0
            for stmt in function.simple_statements():
                if isinstance(stmt, IndirectCall):
                    pointer = self.symbols.variable(function.name, stmt.pointer)
                    callees = {
                        fn_sites[site]
                        for site in self.var_pts[pointer]
                        if site in fn_sites
                    }
                    targets[(function.name, position)] = callees
                    position += 1
        return targets


@dataclass
class _Constraints:
    """The raw constraint lists extracted from the program."""

    allocs: List[Tuple[int, int]] = field(default_factory=list)  # (var, site)
    copies: List[Tuple[int, int]] = field(default_factory=list)  # src -> dst
    loads: List[Tuple[int, int]] = field(default_factory=list)  # (dst, src: *src)
    stores: List[Tuple[int, int]] = field(default_factory=list)  # (dst: *dst, src)
    #: Indirect calls: (pointer var, optional target var, argument vars).
    icalls: List[Tuple[int, Optional[int], Tuple[int, ...]]] = field(default_factory=list)


def _return_vars(program: Program, symbols: SymbolTable) -> Dict[str, List[int]]:
    return_vars: Dict[str, List[int]] = {}
    for function in program.functions.values():
        for stmt in function.simple_statements():
            if isinstance(stmt, Return) and stmt.value is not None:
                return_vars.setdefault(function.name, []).append(
                    symbols.variable(function.name, stmt.value)
                )
    return return_vars


def _collect(program: Program, symbols: SymbolTable) -> _Constraints:
    constraints = _Constraints()
    return_vars = _return_vars(program, symbols)
    for function in program.functions.values():
        fname = function.name
        for stmt in function.simple_statements():
            if isinstance(stmt, Alloc):
                constraints.allocs.append(
                    (symbols.variable(fname, stmt.target), symbols.site(fname, stmt.site))
                )
            elif isinstance(stmt, Copy):
                constraints.copies.append(
                    (symbols.variable(fname, stmt.source), symbols.variable(fname, stmt.target))
                )
            elif isinstance(stmt, (Load, FieldLoad)):
                # Field loads collapse onto the object cell here; the
                # field-sensitive solver lives in field_andersen.py.
                constraints.loads.append(
                    (symbols.variable(fname, stmt.target), symbols.variable(fname, stmt.source))
                )
            elif isinstance(stmt, (Store, FieldStore)):
                constraints.stores.append(
                    (symbols.variable(fname, stmt.target), symbols.variable(fname, stmt.source))
                )
            elif isinstance(stmt, Call):
                callee = program.functions[stmt.callee]
                for param, arg in zip(callee.params, stmt.args):
                    constraints.copies.append(
                        (
                            symbols.variable(fname, arg),
                            symbols.variable(stmt.callee, param),
                        )
                    )
                if stmt.target is not None:
                    target = symbols.variable(fname, stmt.target)
                    for returned in return_vars.get(stmt.callee, ()):
                        constraints.copies.append((returned, target))
            elif isinstance(stmt, FuncRef):
                constraints.allocs.append(
                    (symbols.variable(fname, stmt.target), symbols.function_object(stmt.func))
                )
            elif isinstance(stmt, IndirectCall):
                constraints.icalls.append(
                    (
                        symbols.variable(fname, stmt.pointer),
                        symbols.variable(fname, stmt.target) if stmt.target else None,
                        tuple(symbols.variable(fname, arg) for arg in stmt.args),
                    )
                )
    return constraints


def analyze(
    program: Program,
    symbols: SymbolTable | None = None,
    optimize: bool = True,
    seed_var_facts: Optional[List[Tuple[int, int]]] = None,
    seed_obj_facts: Optional[List[Tuple[int, int]]] = None,
) -> AndersenResult:
    """Run the inclusion-based analysis to a fixed point.

    ``optimize`` enables the offline presolve (copy-cycle collapsing, see
    :mod:`repro.analysis.presolve`); the solution is identical either way —
    collapsed variables share their representative's points-to set.

    ``seed_var_facts``/``seed_obj_facts`` pre-load ``(var, site)`` /
    ``(cell site, site)`` facts before solving — the library-reuse hook
    (:mod:`repro.analysis.library`).  Seeds must be a subset of the final
    fixpoint (guaranteed when they come from analysing a sub-program), in
    which case the result is identical to an unseeded run.
    """
    if symbols is None:
        symbols = SymbolTable(program)
    constraints = _collect(program, symbols)

    n_vars = symbols.n_variables
    n_sites = symbols.n_sites

    representative: Optional[List[int]] = None
    allocs = constraints.allocs
    copies = constraints.copies
    loads = constraints.loads
    stores = constraints.stores
    icalls = constraints.icalls
    if optimize:
        from .presolve import collapse, copy_graph_sccs

        representative = copy_graph_sccs(n_vars, copies)
        allocs, copies, loads, stores = (
            list(part) for part in collapse(representative, allocs, copies, loads, stores)
        )
        rep = representative
        icalls = [
            (rep[pointer], rep[target] if target is not None else None,
             tuple(rep[arg] for arg in args))
            for pointer, target, args in icalls
        ]

    def as_rep(var: int) -> int:
        return representative[var] if representative is not None else var

    var_pts = [SparseBitmap() for _ in range(n_vars)]
    obj_pts = [SparseBitmap() for _ in range(n_sites)]

    # Copy edges between variables; loads/stores add var<->object flows.
    succ_var: List[Set[int]] = [set() for _ in range(n_vars)]
    for src, dst in copies:
        if dst != src:
            succ_var[src].add(dst)
    loads_from: List[Set[int]] = [set() for _ in range(n_vars)]  # src -> {dst}
    stores_to: List[Set[int]] = [set() for _ in range(n_vars)]  # dst -> {src}
    for dst, src in loads:
        loads_from[src].add(dst)
    for dst, src in stores:
        stores_to[dst].add(src)

    for var, site in allocs:
        var_pts[var].add(site)

    # Library-reuse seeds: facts pre-paid by an earlier analysis cycle.
    if seed_var_facts:
        for var, site in seed_var_facts:
            var_pts[as_rep(var)].add(site)
    if seed_obj_facts:
        for cell, site in seed_obj_facts:
            obj_pts[cell].add(site)

    # Indirect-call plumbing: which icall records watch each pointer var,
    # plus the function-object site table and per-function signatures.
    fn_sites = symbols.function_object_sites()
    icalls_on: List[List[int]] = [[] for _ in range(n_vars)]
    for icall_id, (pointer, _target, _args) in enumerate(icalls):
        icalls_on[pointer].append(icall_id)
    return_vars = _return_vars(program, symbols)
    param_vars = {
        name: [symbols.variable(name, param) for param in function.params]
        for name, function in program.functions.items()
    }
    resolved_icalls: Set[Tuple[int, int]] = set()

    # Dynamic copy edges discovered by dereferences, deduplicated.
    obj_to_var: List[Set[int]] = [set() for _ in range(n_sites)]  # pts(o) ⊆ pts(v)
    var_to_obj: List[Set[int]] = [set() for _ in range(n_vars)]  # pts(v) ⊆ pts(o)

    # Difference propagation: each node carries a *delta* — the facts added
    # since it was last processed — and only the delta flows along existing
    # edges.  Every fact enters a node's set exactly once through its delta,
    # so dereference-edge discovery and icall resolution scan deltas instead
    # of whole points-to sets; a newly created edge is paid for with one
    # full-set propagation at creation time, after which delta flow keeps it
    # current.  The fixpoint is identical to whole-set propagation, but the
    # work per iteration is proportional to what changed, which is what
    # makes million-pointer PMs generatable.
    var_delta: List[SparseBitmap] = [pts.copy() for pts in var_pts]
    obj_delta: List[SparseBitmap] = [SparseBitmap() for _ in range(n_sites)]

    worklist: List[Tuple[str, int]] = [("var", v) for v in range(n_vars) if var_pts[v]]
    pending: Set[Tuple[str, int]] = set(worklist)
    iterations = 0

    def push(kind: str, index: int) -> None:
        key = (kind, index)
        if key not in pending:
            pending.add(key)
            worklist.append(key)

    def gain_var(dst: int, bits: SparseBitmap) -> None:
        gained = bits - var_pts[dst]
        if gained:
            var_pts[dst].union_update(gained)
            var_delta[dst].union_update(gained)
            push("var", dst)

    def gain_obj(obj: int, bits: SparseBitmap) -> None:
        gained = bits - obj_pts[obj]
        if gained:
            obj_pts[obj].union_update(gained)
            obj_delta[obj].union_update(gained)
            push("obj", obj)

    while worklist:
        kind, index = worklist.pop()
        pending.discard((kind, index))
        iterations += 1
        if kind == "var":
            delta = var_delta[index]
            var_delta[index] = SparseBitmap()
            # Resolve indirect calls through this pointer (on-the-fly call
            # graph): each *new* function object wires the usual
            # argument/return copy edges, once, with a full-set catch-up.
            for icall_id in icalls_on[index]:
                _pointer, target, args = icalls[icall_id]
                for site in delta:
                    func = fn_sites.get(site)
                    if func is None or (icall_id, site) in resolved_icalls:
                        continue
                    resolved_icalls.add((icall_id, site))
                    for arg, param in zip(args, param_vars[func]):
                        param = as_rep(param)
                        if param != arg:
                            succ_var[arg].add(param)
                        gain_var(param, var_pts[arg])
                    if target is not None:
                        for returned in return_vars.get(func, ()):
                            returned = as_rep(returned)
                            if returned != target:
                                succ_var[returned].add(target)
                            gain_var(target, var_pts[returned])
            # New dereference edges induced by this variable's new objects;
            # objects already propagated wired these edges on their delta.
            for dst in loads_from[index]:
                for obj in delta:
                    if dst not in obj_to_var[obj]:
                        obj_to_var[obj].add(dst)
                        gain_var(dst, obj_pts[obj])
            for src in stores_to[index]:
                for obj in delta:
                    if obj not in var_to_obj[src]:
                        var_to_obj[src].add(obj)
                        gain_obj(obj, var_pts[src])
            # Propagate the delta along static and dynamic copy edges.
            for dst in succ_var[index]:
                gain_var(dst, delta)
            for obj in var_to_obj[index]:
                gain_obj(obj, delta)
        else:
            delta = obj_delta[index]
            obj_delta[index] = SparseBitmap()
            for dst in obj_to_var[index]:
                gain_var(dst, delta)

    if representative is not None:
        # Collapsed variables share their representative's solution (the
        # same row sharing the merged encodings use).
        for var in range(n_vars):
            rep = representative[var]
            if rep != var:
                var_pts[var] = var_pts[rep]

    return AndersenResult(symbols=symbols, var_pts=var_pts, obj_pts=obj_pts,
                          iterations=iterations)
