"""Canonicalising constrained points-to results to the matrix (Section 6.1).

The Pestrie pipeline consumes an *unconstrained* boolean matrix.  Precise
analyses attach qualifiers to their facts; each qualifier family has a
renaming into fresh pointer rows:

* flow-sensitive  ``p --l--> o``        →  ``(l, p) ↦ p_l``;
* context-sensitive ``(c, p) → (c', o)`` →  ``p_c`` and ``o_c'`` (after
  merging contexts per call site — the 1-callsite projection the paper
  applies to geomPTA results);
* path-sensitive ``p --l1∨…∨lk--> o``   →  split over the basis predicates
  into ``p_l1 → o, …, p_lk → o``.

Every transform returns the matrix *and* the name tables, so queries can be
posed in source terms (e.g. ``ListPointsTo(c, p)``) and so Section 6.2's
correlation can keep ids stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..matrix.points_to import PointsToMatrix
from .context_sensitive import ContextSensitiveResult
from .flow_sensitive import FlowSensitiveResult


@dataclass
class NamedMatrix:
    """A points-to matrix plus its row/column naming."""

    matrix: PointsToMatrix
    pointer_index: Dict[str, int] = field(default_factory=dict)
    object_index: Dict[str, int] = field(default_factory=dict)

    def pointer_id(self, name: str) -> int:
        return self.pointer_index[name]

    def object_id(self, name: str) -> int:
        return self.object_index[name]


class _Interner:
    def __init__(self):
        self.index: Dict[str, int] = {}

    def intern(self, name: str) -> int:
        return self.index.setdefault(name, len(self.index))

    def names(self) -> List[str]:
        table = [""] * len(self.index)
        for name, value in self.index.items():
            table[value] = name
        return table


def _build(pairs: Iterable[Tuple[str, str]]) -> NamedMatrix:
    pointers = _Interner()
    objects = _Interner()
    facts = [(pointers.intern(p), objects.intern(o)) for p, o in pairs]
    matrix = PointsToMatrix(
        len(pointers.index), len(objects.index),
        pointer_names=pointers.names(), object_names=objects.names(),
    )
    for pointer, obj in facts:
        matrix.add(pointer, obj)
    return NamedMatrix(matrix=matrix, pointer_index=pointers.index,
                       object_index=objects.index)


# ----------------------------------------------------------------------
# Flow-sensitive: (l, p) ↦ p_l
# ----------------------------------------------------------------------

def flow_sensitive_to_matrix(result: FlowSensitiveResult) -> NamedMatrix:
    """Rename each ``(definition point, variable)`` pair to a fresh row."""
    variable_names = result.symbols.variable_names()
    site_names = result.symbols.site_names()

    def emit() -> Iterable[Tuple[str, str]]:
        for fact in result.facts:
            pointer = "%s@L%d" % (variable_names[fact.variable], fact.label)
            for obj in sorted(fact.objects):
                yield pointer, site_names[obj]
        for function, variable, objects in result.entry_facts:
            pointer = "%s@entry(%s)" % (variable_names[variable], function)
            for obj in sorted(objects):
                yield pointer, site_names[obj]

    return _build(emit())


# ----------------------------------------------------------------------
# Context-sensitive: (c, p) ↦ p_c with per-call-site context merging
# ----------------------------------------------------------------------

def merge_context(context: Tuple[int, ...], depth: int = 1) -> Tuple[int, ...]:
    """The paper's representative-context projection: keep the innermost
    ``depth`` call sites (all contexts of one call site merge into one)."""
    if depth <= 0:
        return ()
    return tuple(context[-depth:])


def context_sensitive_to_matrix(
    result: ContextSensitiveResult, merge_depth: int = 1
) -> NamedMatrix:
    """Rename merged ``(context, entity)`` pairs to fresh rows/columns."""
    symbols = result.symbols
    variable_names = symbols.variable_names()
    site_names = symbols.site_names()

    def owner_of(qualified: str) -> Tuple[str, Tuple[int, ...], str]:
        """Split ``clone::name`` into (base function, merged context, name)."""
        if "::" not in qualified:
            return "", (), qualified  # a global: context-free by definition
        clone, _, bare = qualified.partition("::")
        base, context = result.clone_info[clone]
        return base, merge_context(context, merge_depth), bare

    def render(base: str, context: Tuple[int, ...], bare: str) -> str:
        if not base:
            return bare
        if not context:
            return "%s::%s" % (base, bare)
        return "%s[%s]::%s" % (base, ",".join(map(str, context)), bare)

    def emit() -> Iterable[Tuple[str, str]]:
        for pointer, pts in enumerate(result.andersen.var_pts):
            if not pts:
                continue
            pointer_name = render(*owner_of(variable_names[pointer]))
            for obj in pts:
                yield pointer_name, render(*owner_of(site_names[obj]))

    return _build(emit())


# ----------------------------------------------------------------------
# Path-sensitive: split disjunctions of basis predicates
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PathFact:
    """``pointer --cond--> obj`` where ``cond`` is a disjunction of basis
    predicates (Hackett/Aiken-style path conditions rewritten over a finite
    basis, as Section 6.1 prescribes)."""

    pointer: str
    obj: str
    predicates: FrozenSet[str]


def path_sensitive_to_matrix(
    facts: Sequence[PathFact], basis: Sequence[str]
) -> NamedMatrix:
    """Split each fact across its predicates: ``p_l1 → o ∪ … ∪ p_lk → o``."""
    basis_set = set(basis)

    def emit() -> Iterable[Tuple[str, str]]:
        for fact in facts:
            unknown = fact.predicates - basis_set
            if unknown:
                raise ValueError(
                    "predicates %s are not in the basis" % sorted(unknown)
                )
            if not fact.predicates:
                raise ValueError(
                    "fact %s -> %s has an empty (unsatisfiable) condition"
                    % (fact.pointer, fact.obj)
                )
            for predicate in sorted(fact.predicates):
                yield "%s|%s" % (fact.pointer, predicate), fact.obj

    return _build(emit())
