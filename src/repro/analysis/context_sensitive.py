"""k-callsite context-sensitive points-to analysis with heap cloning.

The classic cloning construction: every function is specialised per
k-limited call string (the last ``k`` call-site ids on the stack), calls are
rewired clone-to-clone, and allocation sites are cloned with their function
— heap cloning falls out of the function-qualified site naming.  Andersen's
analysis then runs on the exploded program.

The result carries *constrained* facts ``(c, p) → (c', o)``, the input
shape for Section 6.1's ``(c, p) → p_c`` canonicalisation; recursion is
handled by k-limiting (cyclic call strings collapse onto their suffix).
This stands in for the paper's Paddle 1-object-sensitive and geomPTA
subjects, which it also projects to 1-callsite before persisting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .andersen import AndersenResult, analyze as andersen_analyze
from .callgraph import CallGraph, CallSite
from .ir import Call, Function, If, Program, Stmt, SymbolTable, While

Context = Tuple[int, ...]  # call-site ids, innermost last


def _clone_name(base: str, context: Context) -> str:
    if not context:
        return base
    return "%s@%s" % (base, "_".join(str(site) for site in context))


@dataclass
class ContextSensitiveResult:
    """The exploded program's Andersen solution plus the clone maps."""

    program: Program
    cloned: Program
    andersen: AndersenResult
    k: int
    #: (base function, context) per clone name.
    clone_info: Dict[str, Tuple[str, Context]]
    callgraph: CallGraph

    @property
    def symbols(self) -> SymbolTable:
        return self.andersen.symbols

    def contexts_of(self, function: str) -> List[Context]:
        return [
            context
            for name, (base, context) in self.clone_info.items()
            if base == function
        ]

    def clone_count(self) -> int:
        return len(self.cloned.functions)


def _rewrite_block(body: List[Stmt], rewrite: Dict[int, str], counter: List[int]) -> List[Stmt]:
    """Copy a statement block, renaming call targets per call-site index."""
    result: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, If):
            result.append(
                If(
                    then_body=_rewrite_block(stmt.then_body, rewrite, counter),
                    else_body=_rewrite_block(stmt.else_body, rewrite, counter),
                )
            )
        elif isinstance(stmt, While):
            result.append(While(body=_rewrite_block(stmt.body, rewrite, counter)))
        elif isinstance(stmt, Call):
            index = counter[0]
            counter[0] += 1
            result.append(Call(target=stmt.target, callee=rewrite[index], args=stmt.args))
        else:
            result.append(stmt)
    return result


def explode(program: Program, k: int = 1) -> Tuple[Program, Dict[str, Tuple[str, Context]]]:
    """Clone every reachable function per k-limited call string."""
    if k < 0:
        raise ValueError("context depth must be non-negative")
    callgraph = CallGraph(program)
    site_index: Dict[Tuple[str, int], CallSite] = {
        (site.caller, site.index): site for site in callgraph.sites
    }

    cloned = Program(entry=program.entry)
    cloned.globals = list(program.globals)  # globals are shared, never cloned
    clone_info: Dict[str, Tuple[str, Context]] = {}
    # Worklist of (base function, context) pairs to materialise.  Seeded
    # with the entry; functions unreachable from it get a context-free
    # copy so library code is still analysed (the paper's pre-analysis
    # setting), and so do address-taken functions — ``p = &f`` keeps
    # referring to the base name, making indirect calls context-free.
    from .ir import FuncRef

    reachable = callgraph.reachable(program.entry)
    address_taken = {
        stmt.func
        for function in program.functions.values()
        for stmt in function.simple_statements()
        if isinstance(stmt, FuncRef)
    }
    pending: List[Tuple[str, Context]] = [(program.entry, ())]
    pending.extend(
        (base, ())
        for base in program.functions
        if base != program.entry and (base not in reachable or base in address_taken)
    )
    scheduled = set(pending)

    while pending:
        base, context = pending.pop()
        name = _clone_name(base, context)
        function = program.functions[base]
        # Per-call-site rewrite table: call i in this clone targets the
        # callee clone under the extended, k-limited context.
        rewrite: Dict[int, str] = {}
        for position, site in enumerate(callgraph.out_sites(base)):
            site_id = callgraph.site_ids[site_index[(base, site.index)]]
            callee_context: Context = tuple((context + (site_id,))[-k:]) if k else ()
            rewrite[position] = _clone_name(site.callee, callee_context)
            key = (site.callee, callee_context)
            if key not in scheduled:
                scheduled.add(key)
                pending.append(key)
        counter = [0]
        cloned.add_function(
            Function(name=name, params=function.params,
                     body=_rewrite_block(function.body, rewrite, counter))
        )
        clone_info[name] = (base, context)

    return cloned, clone_info


def analyze(program: Program, k: int = 1) -> ContextSensitiveResult:
    """Explode to k-callsite clones and solve with Andersen."""
    cloned, clone_info = explode(program, k)
    andersen = andersen_analyze(cloned)
    return ContextSensitiveResult(
        program=program,
        cloned=cloned,
        andersen=andersen,
        k=k,
        clone_info=clone_info,
        callgraph=CallGraph(program),
    )
