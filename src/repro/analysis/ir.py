"""A small imperative pointer IR.

This is the analysis substrate standing in for LLVM bitcode / Jimple in the
paper's pipeline: a whole program is a set of functions over pointer-typed
variables, with allocation, copy, load, store, direct calls, returns, and
structured nondeterministic control flow (``if``/``while``), which is what
makes flow-sensitivity observable.

The IR is deliberately field-insensitive (one abstract cell per object), the
usual baseline for the algorithms reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union


@dataclass(frozen=True)
class Alloc:
    """``target = alloc Site`` — ``target`` points to allocation site ``site``."""

    target: str
    site: str


@dataclass(frozen=True)
class Copy:
    """``target = source``."""

    target: str
    source: str


@dataclass(frozen=True)
class Load:
    """``target = *source``."""

    target: str
    source: str


@dataclass(frozen=True)
class Store:
    """``*target = source``."""

    target: str
    source: str


@dataclass(frozen=True)
class FieldLoad:
    """``target = source.field``."""

    target: str
    source: str
    field: str


@dataclass(frozen=True)
class FieldStore:
    """``target.field = source``."""

    target: str
    field: str
    source: str


@dataclass(frozen=True)
class Call:
    """``target = callee(args...)`` — ``target`` may be ``None``."""

    target: Optional[str]
    callee: str
    args: Tuple[str, ...]


@dataclass(frozen=True)
class FuncRef:
    """``target = &func`` — take the address of a function."""

    target: str
    func: str


@dataclass(frozen=True)
class IndirectCall:
    """``target = icall pointer(args...)`` — call through a function pointer.

    The callee set is whatever the points-to analysis resolves for
    ``pointer`` (on-the-fly call-graph construction).
    """

    target: Optional[str]
    pointer: str
    args: Tuple[str, ...]


@dataclass(frozen=True)
class Return:
    """``return value`` — ``value`` may be ``None``."""

    value: Optional[str]


Simple = Union[Alloc, Copy, Load, Store, FieldLoad, FieldStore, Call, FuncRef, IndirectCall, Return]


@dataclass
class If:
    """Nondeterministic two-way branch (conditions are abstracted away)."""

    then_body: List["Stmt"] = field(default_factory=list)
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass
class While:
    """Nondeterministic loop."""

    body: List["Stmt"] = field(default_factory=list)


Stmt = Union[Simple, If, While]


@dataclass
class Function:
    """One function: parameter names, body, and its declared locals."""

    name: str
    params: Tuple[str, ...]
    body: List[Stmt] = field(default_factory=list)

    def simple_statements(self) -> Iterator[Simple]:
        """All simple statements, in source order, descending into blocks."""
        yield from _walk(self.body)

    def variables(self) -> List[str]:
        """Every variable mentioned in the function, params first."""
        seen: Dict[str, None] = {param: None for param in self.params}
        for stmt in self.simple_statements():
            for name in _mentioned(stmt):
                seen.setdefault(name, None)
        return list(seen)


def _walk(body: List[Stmt]) -> Iterator[Simple]:
    for stmt in body:
        if isinstance(stmt, If):
            yield from _walk(stmt.then_body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, While):
            yield from _walk(stmt.body)
        else:
            yield stmt


def _mentioned(stmt: Simple) -> Iterator[str]:
    if isinstance(stmt, Alloc):
        yield stmt.target
    elif isinstance(stmt, (Copy, Load, Store, FieldLoad, FieldStore)):
        yield stmt.target
        yield stmt.source
    elif isinstance(stmt, Call):
        if stmt.target is not None:
            yield stmt.target
        yield from stmt.args
    elif isinstance(stmt, FuncRef):
        yield stmt.target
    elif isinstance(stmt, IndirectCall):
        if stmt.target is not None:
            yield stmt.target
        yield stmt.pointer
        yield from stmt.args
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            yield stmt.value


@dataclass
class Program:
    """A whole program: functions plus global variable declarations."""

    functions: Dict[str, Function] = field(default_factory=dict)
    globals: List[str] = field(default_factory=list)
    entry: str = "main"

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise ValueError("duplicate function %r" % function.name)
        self.functions[function.name] = function

    def statement_count(self) -> int:
        """Simple-statement count — the LOC analogue of the paper's Table 2."""
        return sum(
            sum(1 for _ in function.simple_statements())
            for function in self.functions.values()
        )

    def validate(self) -> None:
        """Check call/func-ref targets exist and direct-call arities match."""
        for function in self.functions.values():
            for stmt in function.simple_statements():
                if isinstance(stmt, Call):
                    callee = self.functions.get(stmt.callee)
                    if callee is None:
                        raise ValueError(
                            "%s calls unknown function %r" % (function.name, stmt.callee)
                        )
                    if len(stmt.args) != len(callee.params):
                        raise ValueError(
                            "%s calls %s with %d args, expected %d"
                            % (function.name, stmt.callee, len(stmt.args), len(callee.params))
                        )
                elif isinstance(stmt, FuncRef):
                    if stmt.func not in self.functions:
                        raise ValueError(
                            "%s references unknown function %r"
                            % (function.name, stmt.func)
                        )
        if self.entry not in self.functions:
            raise ValueError("entry function %r missing" % self.entry)


class SymbolTable:
    """Dense integer ids for variables and allocation sites.

    Variables are qualified ``function::name`` (globals keep their bare
    name); allocation sites are qualified ``function::site``; functions
    whose address is taken get a *function object* site ``fn:name``.  The
    table is the id universe the points-to matrices are built over, and
    what Section 6.2's cross-run correlation persists.
    """

    def __init__(self, program: Program):
        self.program = program
        self.variable_ids: Dict[str, int] = {}
        self.site_ids: Dict[str, int] = {}
        for name in program.globals:
            self._intern_variable(name)
        for function in program.functions.values():
            for variable in function.variables():
                if variable not in program.globals:
                    self._intern_variable("%s::%s" % (function.name, variable))
            for stmt in function.simple_statements():
                if isinstance(stmt, Alloc):
                    self._intern_site("%s::%s" % (function.name, stmt.site))
                elif isinstance(stmt, FuncRef):
                    self._intern_site("fn:%s" % stmt.func)

    def _intern_variable(self, qualified: str) -> int:
        return self.variable_ids.setdefault(qualified, len(self.variable_ids))

    def _intern_site(self, qualified: str) -> int:
        return self.site_ids.setdefault(qualified, len(self.site_ids))

    def variable(self, function: Optional[str], name: str) -> int:
        """Resolve a variable reference from inside ``function``."""
        if name in self.program.globals:
            return self.variable_ids[name]
        if function is None:
            raise KeyError("%r is not a global" % name)
        return self.variable_ids["%s::%s" % (function, name)]

    def site(self, function: str, name: str) -> int:
        return self.site_ids["%s::%s" % (function, name)]

    def function_object(self, func: str) -> int:
        """The site id of a function object (address-taken function)."""
        return self.site_ids["fn:%s" % func]

    def function_object_sites(self) -> Dict[int, str]:
        """Map each function-object site id back to its function name."""
        return {
            site_id: name[3:]
            for name, site_id in self.site_ids.items()
            if name.startswith("fn:")
        }

    @property
    def n_variables(self) -> int:
        return len(self.variable_ids)

    @property
    def n_sites(self) -> int:
        return len(self.site_ids)

    def variable_names(self) -> List[str]:
        names = [""] * len(self.variable_ids)
        for name, index in self.variable_ids.items():
            names[index] = name
        return names

    def site_names(self) -> List[str]:
        names = [""] * len(self.site_ids)
        for name, index in self.site_ids.items():
            names[index] = name
        return names
