"""Frontend for the pointer IR: a small line-oriented language.

Example program::

    global g

    func id(x) {
      return x
    }

    func main() {
      p = alloc A
      q = p
      *p = q
      r = *p
      if {
        s = call id(p)
      } else {
        s = alloc B
      }
      while {
        t = *s
        *g = t
      }
      return r
    }

One statement per line; ``//`` starts a comment; ``if``/``else``/``while``
blocks use braces on their own lines as shown.  Conditions are abstracted
(the analyses are path-insensitive at the IR level; path predicates enter
through Section 6's transformation instead).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ir import (
    Alloc,
    Call,
    Copy,
    FieldLoad,
    FieldStore,
    FuncRef,
    Function,
    If,
    IndirectCall,
    Load,
    Program,
    Return,
    Stmt,
    Store,
    While,
)

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_RE_GLOBAL = re.compile(r"^global\s+(%s)$" % _IDENT)
_RE_FUNC = re.compile(r"^func\s+(%s)\s*\(([^)]*)\)\s*\{$" % _IDENT)
_RE_ALLOC = re.compile(r"^(%s)\s*=\s*alloc\s+(%s)$" % (_IDENT, _IDENT))
_RE_COPY = re.compile(r"^(%s)\s*=\s*(%s)$" % (_IDENT, _IDENT))
_RE_LOAD = re.compile(r"^(%s)\s*=\s*\*\s*(%s)$" % (_IDENT, _IDENT))
_RE_STORE = re.compile(r"^\*\s*(%s)\s*=\s*(%s)$" % (_IDENT, _IDENT))
_RE_FIELD_LOAD = re.compile(r"^(%s)\s*=\s*(%s)\.(%s)$" % (_IDENT, _IDENT, _IDENT))
_RE_FIELD_STORE = re.compile(r"^(%s)\.(%s)\s*=\s*(%s)$" % (_IDENT, _IDENT, _IDENT))
_RE_CALL = re.compile(r"^(?:(%s)\s*=\s*)?call\s+(%s)\s*\(([^)]*)\)$" % (_IDENT, _IDENT))
_RE_FUNCREF = re.compile(r"^(%s)\s*=\s*&\s*(%s)$" % (_IDENT, _IDENT))
_RE_ICALL = re.compile(r"^(?:(%s)\s*=\s*)?icall\s+(%s)\s*\(([^)]*)\)$" % (_IDENT, _IDENT))
_RE_RETURN = re.compile(r"^return(?:\s+(%s))?$" % _IDENT)

_KEYWORDS = {"global", "func", "alloc", "call", "icall", "return", "if", "else", "while"}


class ParseError(ValueError):
    """A syntax error, with the offending line number."""

    def __init__(self, message: str, line_number: int):
        super().__init__("line %d: %s" % (line_number, message))
        self.line_number = line_number


def _strip(line: str) -> str:
    comment = line.find("//")
    if comment != -1:
        line = line[:comment]
    return line.strip()


def _split_args(raw: str, line_number: int) -> Tuple[str, ...]:
    raw = raw.strip()
    if not raw:
        return ()
    parts = [part.strip() for part in raw.split(",")]
    for part in parts:
        if not re.fullmatch(_IDENT, part):
            raise ParseError("bad identifier %r in argument list" % part, line_number)
    return tuple(parts)


class _Parser:
    def __init__(self, source: str):
        self.lines = source.splitlines()
        self.position = 0

    def _next(self) -> Optional[Tuple[int, str]]:
        while self.position < len(self.lines):
            self.position += 1
            text = _strip(self.lines[self.position - 1])
            if text:
                return self.position, text
        return None

    def parse(self) -> Program:
        program = Program()
        while True:
            item = self._next()
            if item is None:
                break
            line_number, text = item
            match = _RE_GLOBAL.match(text)
            if match:
                name = match.group(1)
                if name in program.globals:
                    raise ParseError("duplicate global %r" % name, line_number)
                program.globals.append(name)
                continue
            match = _RE_FUNC.match(text)
            if match:
                name = match.group(1)
                params = _split_args(match.group(2), line_number)
                body = self._parse_block(name)
                program.add_function(Function(name=name, params=params, body=body))
                continue
            raise ParseError("expected 'global' or 'func', got %r" % text, line_number)
        return program

    def _parse_block(self, function: str) -> List[Stmt]:
        body: List[Stmt] = []
        while True:
            item = self._next()
            if item is None:
                raise ParseError("unexpected end of file inside %r" % function, len(self.lines))
            line_number, text = item
            if text == "}":
                return body
            body.append(self._parse_statement(function, line_number, text))

    def _parse_statement(self, function: str, line_number: int, text: str) -> Stmt:
        if text == "if {":
            then_body = self._parse_block(function)
            # Optional 'else {' immediately after.
            checkpoint = self.position
            item = self._next()
            if item is not None and item[1] == "else {":
                else_body = self._parse_block(function)
            else:
                self.position = checkpoint
                else_body = []
            return If(then_body=then_body, else_body=else_body)
        if text == "while {":
            return While(body=self._parse_block(function))
        match = _RE_ALLOC.match(text)
        if match:
            return Alloc(target=match.group(1), site=match.group(2))
        match = _RE_LOAD.match(text)
        if match:
            return Load(target=match.group(1), source=match.group(2))
        match = _RE_STORE.match(text)
        if match:
            return Store(target=match.group(1), source=match.group(2))
        match = _RE_FIELD_LOAD.match(text)
        if match:
            return FieldLoad(target=match.group(1), source=match.group(2),
                             field=match.group(3))
        match = _RE_FIELD_STORE.match(text)
        if match:
            return FieldStore(target=match.group(1), field=match.group(2),
                              source=match.group(3))
        match = _RE_CALL.match(text)
        if match:
            return Call(
                target=match.group(1),
                callee=match.group(2),
                args=_split_args(match.group(3), line_number),
            )
        match = _RE_ICALL.match(text)
        if match:
            return IndirectCall(
                target=match.group(1),
                pointer=match.group(2),
                args=_split_args(match.group(3), line_number),
            )
        match = _RE_FUNCREF.match(text)
        if match:
            return FuncRef(target=match.group(1), func=match.group(2))
        match = _RE_RETURN.match(text)
        if match:
            return Return(value=match.group(1))
        match = _RE_COPY.match(text)
        if match:
            if match.group(2) in _KEYWORDS:
                raise ParseError("malformed statement %r" % text, line_number)
            return Copy(target=match.group(1), source=match.group(2))
        raise ParseError("unrecognised statement %r" % text, line_number)


def parse_program(source: str, validate: bool = True) -> Program:
    """Parse source text into a :class:`Program`."""
    program = _Parser(source).parse()
    if validate:
        program.validate()
    return program


def format_program(program: Program) -> str:
    """Pretty-print a program back to parseable source (IR persistence)."""
    lines: List[str] = []
    for name in program.globals:
        lines.append("global %s" % name)
    if program.globals:
        lines.append("")
    for function in program.functions.values():
        lines.append("func %s(%s) {" % (function.name, ", ".join(function.params)))
        _format_block(function.body, lines, indent=1)
        lines.append("}")
        lines.append("")
    return "\n".join(lines)


def _format_block(body: List[Stmt], lines: List[str], indent: int) -> None:
    pad = "  " * indent
    for stmt in body:
        if isinstance(stmt, If):
            lines.append(pad + "if {")
            _format_block(stmt.then_body, lines, indent + 1)
            if stmt.else_body:
                lines.append(pad + "}")
                lines.append(pad + "else {")
                _format_block(stmt.else_body, lines, indent + 1)
            lines.append(pad + "}")
        elif isinstance(stmt, While):
            lines.append(pad + "while {")
            _format_block(stmt.body, lines, indent + 1)
            lines.append(pad + "}")
        elif isinstance(stmt, Alloc):
            lines.append(pad + "%s = alloc %s" % (stmt.target, stmt.site))
        elif isinstance(stmt, Copy):
            lines.append(pad + "%s = %s" % (stmt.target, stmt.source))
        elif isinstance(stmt, Load):
            lines.append(pad + "%s = *%s" % (stmt.target, stmt.source))
        elif isinstance(stmt, Store):
            lines.append(pad + "*%s = %s" % (stmt.target, stmt.source))
        elif isinstance(stmt, FieldLoad):
            lines.append(pad + "%s = %s.%s" % (stmt.target, stmt.source, stmt.field))
        elif isinstance(stmt, FieldStore):
            lines.append(pad + "%s.%s = %s" % (stmt.target, stmt.field, stmt.source))
        elif isinstance(stmt, Call):
            prefix = "%s = " % stmt.target if stmt.target else ""
            lines.append(pad + "%scall %s(%s)" % (prefix, stmt.callee, ", ".join(stmt.args)))
        elif isinstance(stmt, FuncRef):
            lines.append(pad + "%s = &%s" % (stmt.target, stmt.func))
        elif isinstance(stmt, IndirectCall):
            prefix = "%s = " % stmt.target if stmt.target else ""
            lines.append(pad + "%sicall %s(%s)" % (prefix, stmt.pointer, ", ".join(stmt.args)))
        elif isinstance(stmt, Return):
            lines.append(pad + ("return %s" % stmt.value if stmt.value else "return"))
        else:  # pragma: no cover - exhaustive over Stmt
            raise TypeError("unknown statement %r" % (stmt,))
