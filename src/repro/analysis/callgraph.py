"""Call graph construction and call-edge numbering.

Calls in the IR are direct, so the call graph is syntactic.  Call *edges*
(individual call sites) get stable integer ids — these are the context
atoms of the k-callsite-sensitive analysis and the names Section 6.2
persists so contexts stay correlated across analysis runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from .ir import Call, Program


@dataclass(frozen=True)
class CallSite:
    """One call site: caller, site index within the caller, and callee."""

    caller: str
    index: int
    callee: str

    @property
    def label(self) -> str:
        return "%s@%d->%s" % (self.caller, self.index, self.callee)


class CallGraph:
    """Direct call graph with numbered call edges."""

    def __init__(self, program: Program):
        self.program = program
        self.sites: List[CallSite] = []
        self.site_ids: Dict[CallSite, int] = {}
        self._out: Dict[str, List[CallSite]] = {name: [] for name in program.functions}
        self._in: Dict[str, List[CallSite]] = {name: [] for name in program.functions}
        for function in program.functions.values():
            index = 0
            for stmt in function.simple_statements():
                if isinstance(stmt, Call):
                    site = CallSite(caller=function.name, index=index, callee=stmt.callee)
                    self.site_ids[site] = len(self.sites)
                    self.sites.append(site)
                    self._out[function.name].append(site)
                    self._in[stmt.callee].append(site)
                    index += 1

    def callees(self, function: str) -> List[str]:
        return [site.callee for site in self._out[function]]

    def callers(self, function: str) -> List[str]:
        return [site.caller for site in self._in[function]]

    def out_sites(self, function: str) -> List[CallSite]:
        return list(self._out[function])

    def in_sites(self, function: str) -> List[CallSite]:
        return list(self._in[function])

    def edge_count(self) -> int:
        return len(self.sites)

    def reachable(self, root: str) -> Set[str]:
        """Functions reachable from ``root`` through direct calls."""
        seen: Set[str] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in seen or current not in self._out:
                continue
            seen.add(current)
            stack.extend(site.callee for site in self._out[current])
        return seen

    def topological_sccs(self) -> List[List[str]]:
        """Strongly connected components in reverse topological order.

        Tarjan's algorithm, iterative; recursive cycles (even mutual
        recursion) collapse into one component.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[List[str]] = []
        counter = [0]

        for root in self.program.functions:
            if root in index:
                continue
            work: List[Tuple[str, Iterator[str]]] = [(root, iter(self.callees(root)))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(self.callees(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components
