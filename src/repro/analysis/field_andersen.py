"""Field-sensitive Andersen analysis.

The Java analyses behind the paper's subjects (Paddle, geomPTA) are
field-sensitive: an object's fields are distinct cells, so ``p.f`` and
``p.g`` never alias through the same object.  This solver refines
:mod:`repro.analysis.andersen` with cells keyed ``(site, field)``:

* ``p = q.f``  →  ``∀o ∈ pts(q): pts(o.f) ⊆ pts(p)``
* ``p.f = q``  →  ``∀o ∈ pts(p): pts(q) ⊆ pts(o.f)``
* ``*p`` / ``*p = q`` use the distinguished field ``"*"``.

Everything else (calls, function pointers, seeds' shape) matches the base
solver.  The result is pointwise at least as precise as the
field-insensitive one, which treats all fields of an object as one cell —
except that the collapsed model also conflates ``*o`` with ``o.f``, so the
comparison holds against a collapsed run where field accesses were
rewritten to plain dereferences (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..matrix.bitmap import SparseBitmap
from ..matrix.points_to import PointsToMatrix
from .andersen import _return_vars
from .ir import (
    Alloc,
    Call,
    Copy,
    FieldLoad,
    FieldStore,
    FuncRef,
    IndirectCall,
    Load,
    Program,
    Return,
    Store,
    SymbolTable,
)

#: The cell reached by a plain ``*p`` dereference.
DEREF_FIELD = "*"

Cell = Tuple[int, str]  # (site id, field name)


@dataclass
class FieldAndersenResult:
    """Field-sensitive solution: per-variable sets plus per-cell contents."""

    symbols: SymbolTable
    var_pts: List[SparseBitmap]
    #: Cell contents, keyed (site, field).
    cell_pts: Dict[Cell, SparseBitmap]
    iterations: int = 0

    def to_matrix(self) -> PointsToMatrix:
        matrix = PointsToMatrix(
            self.symbols.n_variables,
            self.symbols.n_sites,
            pointer_names=self.symbols.variable_names(),
            object_names=self.symbols.site_names(),
        )
        for pointer, pts in enumerate(self.var_pts):
            for obj in pts:
                matrix.add(pointer, obj)
        return matrix

    def pts_of(self, function: str, name: str) -> Set[int]:
        return set(self.var_pts[self.symbols.variable(function, name)])

    def cell_of(self, function: str, site: str, field: str = DEREF_FIELD) -> Set[int]:
        """The contents of one field cell (empty if never written)."""
        key = (self.symbols.site(function, site), field)
        cell = self.cell_pts.get(key)
        return set(cell) if cell is not None else set()


def analyze(program: Program, symbols: Optional[SymbolTable] = None) -> FieldAndersenResult:
    """Solve the field-sensitive constraint system to a fixed point."""
    if symbols is None:
        symbols = SymbolTable(program)

    n_vars = symbols.n_variables
    var_pts = [SparseBitmap() for _ in range(n_vars)]
    cell_pts: Dict[Cell, SparseBitmap] = {}

    def cell(site: int, field: str) -> SparseBitmap:
        key = (site, field)
        existing = cell_pts.get(key)
        if existing is None:
            existing = SparseBitmap()
            cell_pts[key] = existing
        return existing

    succ_var: List[Set[int]] = [set() for _ in range(n_vars)]
    #: (dst, field) pairs loading through each variable.
    loads_from: List[List[Tuple[int, str]]] = [[] for _ in range(n_vars)]
    #: (src, field) pairs storing through each variable.
    stores_to: List[List[Tuple[int, str]]] = [[] for _ in range(n_vars)]
    icalls: List[Tuple[int, Optional[int], Tuple[int, ...]]] = []

    return_vars = _return_vars(program, symbols)
    for function in program.functions.values():
        fname = function.name

        def var(name: str) -> int:
            return symbols.variable(fname, name)

        for stmt in function.simple_statements():
            if isinstance(stmt, Alloc):
                var_pts[var(stmt.target)].add(symbols.site(fname, stmt.site))
            elif isinstance(stmt, Copy):
                if var(stmt.source) != var(stmt.target):
                    succ_var[var(stmt.source)].add(var(stmt.target))
            elif isinstance(stmt, Load):
                loads_from[var(stmt.source)].append((var(stmt.target), DEREF_FIELD))
            elif isinstance(stmt, FieldLoad):
                loads_from[var(stmt.source)].append((var(stmt.target), stmt.field))
            elif isinstance(stmt, Store):
                stores_to[var(stmt.target)].append((var(stmt.source), DEREF_FIELD))
            elif isinstance(stmt, FieldStore):
                stores_to[var(stmt.target)].append((var(stmt.source), stmt.field))
            elif isinstance(stmt, Call):
                callee = program.functions[stmt.callee]
                for param, arg in zip(callee.params, stmt.args):
                    source = var(arg)
                    target = symbols.variable(stmt.callee, param)
                    if source != target:
                        succ_var[source].add(target)
                if stmt.target is not None:
                    for returned in return_vars.get(stmt.callee, ()):
                        if returned != var(stmt.target):
                            succ_var[returned].add(var(stmt.target))
            elif isinstance(stmt, FuncRef):
                var_pts[var(stmt.target)].add(symbols.function_object(stmt.func))
            elif isinstance(stmt, IndirectCall):
                icalls.append(
                    (
                        var(stmt.pointer),
                        var(stmt.target) if stmt.target else None,
                        tuple(var(arg) for arg in stmt.args),
                    )
                )
            elif isinstance(stmt, Return):
                pass

    fn_sites = symbols.function_object_sites()
    icalls_on: List[List[int]] = [[] for _ in range(n_vars)]
    for icall_id, (pointer, _target, _args) in enumerate(icalls):
        icalls_on[pointer].append(icall_id)
    param_vars = {
        name: [symbols.variable(name, param) for param in function.params]
        for name, function in program.functions.items()
    }
    resolved: Set[Tuple[int, int]] = set()

    # Dynamic edges, deduplicated: cell -> vars it flows into; var -> cells.
    cell_to_var: Dict[Cell, Set[int]] = {}
    var_to_cell: Dict[int, Set[Cell]] = {}

    worklist: List[Tuple[str, object]] = [("var", v) for v in range(n_vars) if var_pts[v]]
    pending: Set[Tuple[str, object]] = set(worklist)
    iterations = 0

    def push(kind: str, index: object) -> None:
        key = (kind, index)
        if key not in pending:
            pending.add(key)
            worklist.append(key)

    while worklist:
        kind, index = worklist.pop()
        pending.discard((kind, index))
        iterations += 1
        if kind == "var":
            pts = var_pts[index]
            for icall_id in icalls_on[index]:
                _pointer, target, args = icalls[icall_id]
                for site in pts:
                    func = fn_sites.get(site)
                    if func is None or (icall_id, site) in resolved:
                        continue
                    resolved.add((icall_id, site))
                    for arg, param in zip(args, param_vars[func]):
                        if param != arg:
                            succ_var[arg].add(param)
                        if var_pts[param].union_update(var_pts[arg]):
                            push("var", param)
                    if target is not None:
                        for returned in return_vars.get(func, ()):
                            if returned != target:
                                succ_var[returned].add(target)
                            if var_pts[target].union_update(var_pts[returned]):
                                push("var", target)
            for dst, field in loads_from[index]:
                for obj in pts:
                    key = (obj, field)
                    watchers = cell_to_var.setdefault(key, set())
                    if dst not in watchers:
                        watchers.add(dst)
                        if var_pts[dst].union_update(cell(obj, field)):
                            push("var", dst)
            for src, field in stores_to[index]:
                for obj in pts:
                    key = (obj, field)
                    sources = var_to_cell.setdefault(src, set())
                    if key not in sources:
                        sources.add(key)
                        if cell(obj, field).union_update(var_pts[src]):
                            push("cell", key)
            for dst in succ_var[index]:
                if var_pts[dst].union_update(pts):
                    push("var", dst)
            for key in var_to_cell.get(index, ()):
                if cell(*key).union_update(pts):
                    push("cell", key)
        else:
            contents = cell_pts[index]
            for dst in cell_to_var.get(index, ()):
                if var_pts[dst].union_update(contents):
                    push("var", dst)

    return FieldAndersenResult(
        symbols=symbols, var_pts=var_pts, cell_pts=cell_pts, iterations=iterations
    )


def collapse_fields(program: Program) -> Program:
    """Rewrite field accesses into plain dereferences (the insensitive view).

    Used by the precision-ordering property test: the field-sensitive
    result on ``program`` must be pointwise within the base solver's result
    on ``collapse_fields(program)``.
    """
    from .ir import Function, If, Stmt, While

    def rewrite(body: List[Stmt]) -> List[Stmt]:
        result: List[Stmt] = []
        for stmt in body:
            if isinstance(stmt, If):
                result.append(
                    If(then_body=rewrite(stmt.then_body), else_body=rewrite(stmt.else_body))
                )
            elif isinstance(stmt, While):
                result.append(While(body=rewrite(stmt.body)))
            elif isinstance(stmt, FieldLoad):
                result.append(Load(target=stmt.target, source=stmt.source))
            elif isinstance(stmt, FieldStore):
                result.append(Store(target=stmt.target, source=stmt.source))
            else:
                result.append(stmt)
        return result

    collapsed = Program(entry=program.entry)
    collapsed.globals = list(program.globals)
    for function in program.functions.values():
        collapsed.functions[function.name] = Function(
            name=function.name, params=function.params, body=rewrite(function.body)
        )
    return collapsed
