"""On-demand points-to analysis: solve only what one query needs.

Section 8 of the paper contrasts persistence with *demand-driven* points-to
analyses (Sridharan/Bodík, Zheng/Rugina): instead of solving the whole
program, compute ``pts(v)`` for one queried variable by exploring just the
constraint subgraph it depends on.  The paper's argument — demand analyses
have "short time and small memory footprints" per query but "cannot be
used in query-intensive situations" — needs such an analysis to exist;
this module provides it, so the trade-off can be measured rather than
assumed.

The algorithm alternates two phases until closure:

1. mark the *support set* — variables the query transitively depends on:
   copy/call sources of marked variables, the base pointers of loads into
   marked variables, and (once a dereferenced cell is known reachable) the
   targets and sources of stores that may write it;
2. run the ordinary inclusion fixpoint restricted to the support set.

Store handling is the conservative part: whether a store ``*t = s`` is
relevant depends on ``pts(t)``, which is only known after solving — hence
the alternation.  The result equals the whole-program solution on the
queried variable (property-tested), while typically visiting a fraction of
the variables (`support_size` reports how many).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..matrix.bitmap import SparseBitmap
from .andersen import _collect, _return_vars
from .ir import Program, SymbolTable


class OnDemandAndersen:
    """Per-variable demand solver over a program's constraint system.

    Queries are memoised: repeated and overlapping queries reuse the
    support already solved (the cumulative sets only grow toward the
    whole-program solution, never past it).
    """

    def __init__(self, program: Program, symbols: Optional[SymbolTable] = None):
        self.symbols = symbols if symbols is not None else SymbolTable(program)
        self.program = program
        constraints = _collect(program, self.symbols)
        n_vars = self.symbols.n_variables

        self._allocs: List[List[int]] = [[] for _ in range(n_vars)]
        for var, site in constraints.allocs:
            self._allocs[var].append(site)
        #: copy edges, reversed: dst -> [src]
        self._copy_into: List[List[int]] = [[] for _ in range(n_vars)]
        for src, dst in constraints.copies:
            self._copy_into[dst].append(src)
        #: loads: dst -> [base]  (dst = *base)
        self._load_into: List[List[int]] = [[] for _ in range(n_vars)]
        for dst, base in constraints.loads:
            self._load_into[dst].append(base)
        #: all stores (base, src):  *base = src
        self._stores: List[Tuple[int, int]] = list(constraints.stores)
        #: indirect calls resolved lazily like the full solver would.
        self._icalls = list(constraints.icalls)
        self._fn_sites = self.symbols.function_object_sites()
        self._param_vars = {
            name: [self.symbols.variable(name, param) for param in function.params]
            for name, function in program.functions.items()
        }
        self._return_vars = _return_vars(program, self.symbols)
        #: icall targets: dst -> [pointer]; arguments handled via supports.
        self._icall_into: List[List[Tuple[int, Tuple[int, ...]]]] = [
            [] for _ in range(n_vars)
        ]
        for pointer, target, args in self._icalls:
            if target is not None:
                self._icall_into[target].append((pointer, args))
        #: parameter vars of address-taken functions receive icall args.
        self._param_of: Dict[int, Tuple[str, int]] = {}
        address_taken = set(self._fn_sites.values())
        for name, params in self._param_vars.items():
            if name in address_taken:
                for position, param in enumerate(params):
                    self._param_of[param] = (name, position)

        self._support: Set[int] = set()
        self._var_pts: Dict[int, SparseBitmap] = {}
        self._obj_pts: Dict[int, SparseBitmap] = {}
        self.solve_rounds = 0

    # ------------------------------------------------------------------

    def _pts(self, var: int) -> SparseBitmap:
        existing = self._var_pts.get(var)
        if existing is None:
            existing = SparseBitmap(self._allocs[var])
            self._var_pts[var] = existing
        return existing

    def _cell(self, site: int) -> SparseBitmap:
        existing = self._obj_pts.get(site)
        if existing is None:
            existing = SparseBitmap()
            self._obj_pts[site] = existing
        return existing

    def _grow_support(self, roots: Set[int]) -> None:
        """Phase 1: pull in everything the roots depend on *syntactically*
        (copies, load bases, icall pointers/returns); stores join later,
        pts-guided."""
        stack = [var for var in roots if var not in self._support]
        while stack:
            var = stack.pop()
            if var in self._support:
                continue
            self._support.add(var)
            self._pts(var)
            for src in self._copy_into[var]:
                if src not in self._support:
                    stack.append(src)
            for base in self._load_into[var]:
                if base not in self._support:
                    stack.append(base)
            for pointer, _args in self._icall_into[var]:
                if pointer not in self._support:
                    stack.append(pointer)
            if var in self._param_of:
                # The param may receive any indirect call's argument; pull
                # in the pointers so phase 2 can resolve which ones apply.
                for pointer, _target, _args in self._icalls:
                    if pointer not in self._support:
                        stack.append(pointer)

    def _solve_restricted(self) -> bool:
        """Phase 2: inclusion fixpoint over the current support set.
        Returns True when new support members were discovered."""
        grew = False
        changed = True
        while changed:
            changed = False
            self.solve_rounds += 1
            for var in list(self._support):
                pts = self._pts(var)
                for src in self._copy_into[var]:
                    if src in self._support and pts.union_update(self._var_pts[src]):
                        changed = True
                for base in self._load_into[var]:
                    if base not in self._support:
                        continue
                    for obj in list(self._var_pts[base]):
                        if pts.union_update(self._cell(obj)):
                            changed = True
                for pointer, _args in self._icall_into[var]:
                    if pointer not in self._support:
                        continue
                    for site in list(self._var_pts[pointer]):
                        func = self._fn_sites.get(site)
                        if func is None:
                            continue
                        for returned in self._return_vars.get(func, ()):
                            if returned not in self._support:
                                self._grow_support({returned})
                                grew = True
                            if pts.union_update(self._var_pts[returned]):
                                changed = True
                owner = self._param_of.get(var)
                if owner is not None:
                    func_name, position = owner
                    for pointer, _target, args in self._icalls:
                        if pointer not in self._support or position >= len(args):
                            continue
                        pointer_pts = self._var_pts.get(pointer)
                        if pointer_pts is None:
                            continue
                        resolves_here = any(
                            self._fn_sites.get(site) == func_name
                            for site in pointer_pts
                        )
                        if not resolves_here:
                            continue
                        arg = args[position]
                        if arg not in self._support:
                            self._grow_support({arg})
                            grew = True
                        if pts.union_update(self._var_pts[arg]):
                            changed = True
            # Stores: relevant once their base may reach a cell we read.
            live_cells = set(self._obj_pts)
            for base, src in self._stores:
                base_pts = self._var_pts.get(base)
                if base in self._support and base_pts is not None:
                    targets = [obj for obj in base_pts if obj in live_cells]
                else:
                    targets = []
                if not targets:
                    continue
                if src not in self._support:
                    self._grow_support({src})
                    grew = True
                for obj in targets:
                    if self._cell(obj).union_update(self._var_pts[src]):
                        changed = True
        return grew

    def _stores_need_bases(self) -> bool:
        """Any store whose base is outside the support might write a live
        cell; pull those bases in so phase 2 can judge them."""
        grew = False
        live_cells = set(self._obj_pts)
        if not live_cells:
            return False
        for base, _src in self._stores:
            if base not in self._support:
                self._grow_support({base})
                grew = True
        del live_cells
        return grew

    # ------------------------------------------------------------------

    def query(self, var: int) -> Set[int]:
        """``pts(var)``, computed on demand; equals the exhaustive result."""
        if not 0 <= var < self.symbols.n_variables:
            raise IndexError("variable id %d out of range" % var)
        self._grow_support({var})
        while True:
            grew = self._solve_restricted()
            # Loads found new cells -> store bases become relevant.
            if self._obj_pts:
                grew = self._stores_need_bases() or grew
                if grew:
                    grew = self._solve_restricted() or False
            if not grew:
                break
        return set(self._var_pts[var])

    def query_named(self, function: Optional[str], name: str) -> Set[str]:
        """Source-level convenience: pts by qualified names."""
        var = self.symbols.variable(function, name)
        site_names = self.symbols.site_names()
        return {site_names[site] for site in self.query(var)}

    def support_size(self) -> int:
        """How many variables the queries so far had to touch."""
        return len(self._support)

    def reset(self) -> None:
        """Drop all query state, keeping the constraint indexes.

        Separates the one-time program indexing (which any demand engine
        pays once and keeps resident) from per-query solving — the cost a
        client re-pays on every cold query.
        """
        self._support.clear()
        self._var_pts.clear()
        self._obj_pts.clear()
        self.solve_rounds = 0
