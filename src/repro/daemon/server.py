"""The alias daemon: an asyncio network tier over :class:`AliasService`.

The paper's economics assume the index is built once and queried by many
independent clients; until now every client had to be in-process.  This
module puts a network front door on the serve layer:

* a **unix-socket binary listener** speaking the length-prefixed batch
  protocol of :mod:`repro.daemon.protocol` — each frame routes straight
  into the service's batch fast path (``is_alias_batch`` /
  ``_list_batch``), so protocol, locking, and instrumentation costs are
  paid once per frame, not once per query;
* **request coalescing** — identical read-only frames in flight at the
  same time share one computation; later arrivals await the first one's
  result instead of re-running it (a delta bumps the coalesce epoch, so
  an answer computed before a reload is never handed to a request that
  arrived after it);
* **admission control** — a bounded pending-request count; when it is
  full, new query frames are refused immediately with ``OVERLOADED``
  instead of queueing without bound (fail fast, let the client back off);
* a **minimal HTTP listener** for operations: ``GET /metrics`` serves
  the process registry's Prometheus 0.0.4 exposition, ``/healthz`` a
  liveness probe, ``/stats`` the service's JSON stats snapshot, and the
  live-introspection surfaces ``/debug/events`` (the flight-recorder
  ring), ``/debug/requests`` (in-flight frames with ages), and
  ``/debug/profile?seconds=N`` (the sampling profiler);
* **request-scoped observability** — ``TRACED`` frames carry a
  client-minted request id into a ``daemon.request`` span rooted on the
  executor thread, run the service work under a per-request
  :class:`~repro.obs.QueryCost` context, and (with ``WANT_COST``) return
  the itemised cost ahead of the answer payload;
* **hot reload** — ``APPLY_DELTA`` frames go through
  :meth:`AliasService.apply_delta`: readers never pause, in-flight
  queries finish against whichever backend they captured, and the
  service's epoch-guarded cache plus the daemon's coalesce epoch keep
  every answer acknowledged after the delta consistent with it.

Query work runs on a small thread pool (``run_in_executor``) so the event
loop only parses frames and shuffles bytes; the service itself is
thread-safe, which is what makes the pool safe.  Multi-process serving
(pre-fork over the shared mmap) lives in :mod:`repro.daemon.workers`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import struct
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Set, Tuple

from ..delta import DeltaLog
from ..obs import get_flight_recorder, get_registry, sample_profile, trace
from ..obs.cost import measure
from . import protocol
from .protocol import (
    MAX_FRAME_BYTES,
    OP_APPLY_DELTA,
    OP_IS_ALIAS,
    OP_LIST_ALIASES,
    OP_LIST_POINTED_BY,
    OP_LIST_POINTS_TO,
    OP_METRICS,
    OP_PING,
    OP_QUERY_AT,
    OP_STATS,
    OP_TRACED,
    OP_VERSIONS,
    OP_NAMES,
    QUERY_OPS,
    ST_BAD_REQUEST,
    ST_INTERNAL,
    ST_OK,
    ST_OVERLOADED,
    ST_UNSUPPORTED,
    STATUS_NAMES,
    ProtocolError,
)

_U32 = struct.Struct("<I")

#: Default bound on requests queued or executing before fast rejection.
DEFAULT_MAX_PENDING = 64

#: Worker threads answering query frames (the service is thread-safe).
DEFAULT_EXECUTOR_THREADS = 4

#: Ceiling on one HTTP request head (request line + headers).
_HTTP_HEAD_LIMIT = 8192

#: Default /debug/profile window when the query string names none.
_DEFAULT_PROFILE_SECONDS = 2.0

_REGISTRY = get_registry()

#: Marker cost payload for responses answered by joining an in-flight
#: twin computation: the joiner did no work of its own to itemise.
_COALESCED_COST = b'{"coalesced": true}'


class _RequestContext:
    """Per-request observability state peeled off a ``TRACED`` wrapper."""

    __slots__ = ("request_id", "want_cost", "start", "parent", "cost")

    def __init__(self, request_id: str, want_cost: bool, start: float, parent):
        self.request_id = request_id
        self.want_cost = want_cost
        self.start = start
        #: The loop thread's current span, re-parented across the executor
        #: boundary by ``trace.propagate`` (usually ``None`` — set when the
        #: daemon itself runs under an enclosing span).
        self.parent = parent
        self.cost = None


class AliasDaemon:
    """One daemon instance: a service, a unix socket, an optional HTTP port.

    Construct, then drive from inside a running event loop with
    :meth:`start` / :meth:`stop` (or :meth:`serve_forever`); from
    synchronous code use :class:`ThreadedDaemon` or
    :func:`repro.daemon.workers.run_daemon`.

    ``socket_path`` binds a fresh unix socket (unlinked again on stop);
    ``listen_socket`` serves an already-bound one instead (the pre-fork
    worker mode, where the parent binds before forking).  ``http_port``
    enables the HTTP listener (``0`` picks a free port; read
    :attr:`http_address` after start).  ``allow_deltas=False`` refuses
    ``APPLY_DELTA`` frames with ``UNSUPPORTED`` — a per-worker delta in
    the pre-fork mode would desynchronise the sibling processes.
    """

    def __init__(self, service, socket_path: Optional[str] = None,
                 listen_socket=None, http_host: str = "127.0.0.1",
                 http_port: Optional[int] = None, *,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 coalesce: bool = True,
                 allow_deltas: bool = True,
                 executor_threads: int = DEFAULT_EXECUTOR_THREADS,
                 close_service: bool = False,
                 worker_slot: int = 0):
        if (socket_path is None) == (listen_socket is None):
            raise ValueError("exactly one of socket_path/listen_socket is required")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self._service = service
        self.socket_path = socket_path
        self._listen_socket = listen_socket
        self.http_host = http_host
        self.http_port = http_port
        self.http_address: Optional[Tuple[str, int]] = None
        self.max_pending = max_pending
        self.max_frame_bytes = min(max_frame_bytes, MAX_FRAME_BYTES)
        self.coalesce = coalesce
        self.allow_deltas = allow_deltas
        self._executor_threads = executor_threads
        self._close_service = close_service
        self.worker_slot = worker_slot

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        # Loop-confined state: only event-loop callbacks touch these.
        self._pending = 0
        self._coalesce_epoch = 0
        self._inflight: Dict[bytes, Tuple[int, asyncio.Future]] = {}
        #: In-flight request registry for /debug/requests: seq -> summary.
        self._requests: Dict[int, Dict[str, object]] = {}
        self._request_seq = 0
        self._started = False
        self._stopped = False
        self._flight = get_flight_recorder()

        self._connections_total = _REGISTRY.counter("repro_daemon_connections_total")
        self._open_connections = _REGISTRY.gauge("repro_daemon_open_connections")
        self._inflight_gauge = _REGISTRY.gauge("repro_daemon_inflight_requests")
        self._rejected = _REGISTRY.counter("repro_daemon_rejected_total")
        self._coalesced = _REGISTRY.counter("repro_daemon_coalesced_total")
        self._protocol_errors = _REGISTRY.counter("repro_daemon_protocol_errors_total")
        self._queries = _REGISTRY.counter("repro_daemon_queries_total")

    @property
    def service(self):
        return self._service

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listeners; returns once both are accepting."""
        if self._started:
            raise RuntimeError("daemon already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_threads, thread_name_prefix="repro-daemon"
        )
        if self._listen_socket is not None:
            self._server = await asyncio.start_unix_server(
                self._on_binary_connection, sock=self._listen_socket
            )
        else:
            self._server = await asyncio.start_unix_server(
                self._on_binary_connection, path=self.socket_path
            )
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._on_http_connection, self.http_host, self.http_port
            )
            self.http_address = self._http_server.sockets[0].getsockname()[:2]
        self._started = True
        # Pre-fork worker labelling: each process advertises its slot, so a
        # fleet scrape distinguishes the workers behind one shared socket.
        _REGISTRY.gauge("repro_daemon_worker_info",
                        slot=str(self.worker_slot)).set(1)
        self._flight.record("daemon_start", slot=self.worker_slot,
                            socket=self.socket_path or "<inherited>",
                            pid=os.getpid())

    async def stop(self, grace: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, release everything.

        In-flight requests get up to ``grace`` seconds to finish and write
        their responses; idle connections are then closed and any
        straggling handlers cancelled.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        deadline = self._loop.time() + grace
        while self._pending and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        tasks = [task for task in self._tasks if not task.done()]
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        self._executor.shutdown(wait=True)
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
        if self._close_service:
            close = getattr(self._service, "close", None)
            if close is not None:
                close()
        self._flight.record("daemon_stop", slot=self.worker_slot,
                            pid=os.getpid())

    async def serve_forever(self, stop_event: Optional[asyncio.Event] = None,
                            install_signal_handlers: bool = False) -> None:
        """Start (if needed), serve until ``stop_event`` fires, then stop."""
        import signal

        if not self._started:
            await self.start()
        event = stop_event or asyncio.Event()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, event.set)
        try:
            await event.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Binary protocol
    # ------------------------------------------------------------------

    async def _on_binary_connection(self, reader: asyncio.StreamReader,
                                    writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        self._writers.add(writer)
        self._connections_total.inc()
        self._open_connections.inc()
        try:
            await self._binary_loop(reader, writer)
        except asyncio.CancelledError:
            raise
        except Exception:
            # A connection must never take the daemon down with it.
            self._protocol_errors.inc()
        finally:
            self._open_connections.inc(-1)
            self._writers.discard(writer)
            self._tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _binary_loop(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                prefix = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away between frames: a normal close
            try:
                length = protocol.body_length(prefix, self.max_frame_bytes)
            except ProtocolError as error:
                # The stream cannot be re-synchronised past a bad length:
                # answer with an error frame, then drop the connection.
                self._protocol_errors.inc()
                with contextlib.suppress(ConnectionError):
                    writer.write(protocol.frame(
                        protocol.encode_error(ST_BAD_REQUEST, str(error))))
                    await writer.drain()
                return
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError):
                self._protocol_errors.inc()
                return  # truncated mid-frame: nothing sane to answer
            response = await self._respond(bytes(body))
            try:
                writer.write(protocol.frame(response))
                await writer.drain()
            except ConnectionError:
                return  # peer vanished mid-response; other clients unaffected

    async def _respond(self, body: bytes) -> bytes:
        """One request frame in, one response body out.  Never raises."""
        start = time.perf_counter()
        ctx: Optional[_RequestContext] = None
        try:
            op = protocol.request_op(body)
            if op == OP_TRACED:
                # Peel the observability wrapper: everything downstream —
                # coalescing included — keys on the *inner* body, so traced
                # frames with unique request ids still join their untraced
                # (or differently-tagged) in-flight twins.
                request_id, want_cost, body = protocol.decode_traced(body)
                op = protocol.request_op(body)
                ctx = _RequestContext(request_id, want_cost, start,
                                      trace.current())
        except ProtocolError as error:
            self._protocol_errors.inc()
            response = protocol.encode_error(ST_BAD_REQUEST, str(error))
            self._record("unknown", response, start, ctx)
            return response
        name = OP_NAMES[op]
        seq = self._register_request(name, ctx)
        try:
            response, cost_json = await self._respond_inner(
                op, name, body, start, ctx)
        finally:
            self._requests.pop(seq, None)
        if ctx is not None and ctx.want_cost:
            response = protocol.attach_cost(response, cost_json or b"{}")
        return response

    async def _respond_inner(self, op: int, name: str, body: bytes,
                             start: float, ctx: Optional[_RequestContext]
                             ) -> Tuple[bytes, Optional[bytes]]:
        if op == OP_PING:
            response = protocol.encode_response(ST_OK)
            self._record(name, response, start, ctx)
            return response, None
        coalescable = op in QUERY_OPS and self.coalesce
        if coalescable:
            # Joining an identical in-flight computation consumes no
            # executor slot, so it is checked BEFORE admission control: a
            # saturated daemon still answers the queries it is already
            # answering.
            entry = self._inflight.get(body)
            if entry is not None and entry[0] == self._coalesce_epoch:
                self._coalesced.inc()
                self._flight.record(
                    "coalesce", op=name,
                    request_id=ctx.request_id if ctx else "")
                # shield(): a waiter's cancellation must not cancel the
                # shared computation other clients are waiting on.
                response, _ = await asyncio.shield(entry[1])
                self._record(name, response, start, ctx)
                return response, _COALESCED_COST
        if op != OP_APPLY_DELTA and self._pending >= self.max_pending:
            # Admission control: fail fast instead of queueing unboundedly.
            # Deltas are exempt — the control plane must stay reachable
            # precisely when the data plane is saturated.
            self._rejected.inc()
            self._flight.record(
                "admission_reject", op=name, pending=self._pending,
                request_id=ctx.request_id if ctx else "")
            response = protocol.encode_error(
                ST_OVERLOADED,
                "daemon at capacity (%d pending requests)" % self._pending,
            )
            self._record(name, response, start, ctx)
            return response, None
        if coalescable:
            response, cost_json = await self._coalesced_run(op, body, ctx)
        else:
            response, cost_json = await self._run(op, body, ctx)
            if op == OP_APPLY_DELTA and response[:1] == bytes((ST_OK,)):
                # Answers computed before this reload must not be handed
                # to requests that arrive after its acknowledgement.
                self._coalesce_epoch += 1
                self._flight.record(
                    "delta", coalesce_epoch=self._coalesce_epoch,
                    version=getattr(self._service, "version", 0),
                    request_id=ctx.request_id if ctx else "")
        self._record(name, response, start, ctx)
        return response, cost_json

    async def _coalesced_run(self, op: int, body: bytes,
                             ctx: Optional[_RequestContext]
                             ) -> Tuple[bytes, Optional[bytes]]:
        future = self._loop.create_future()
        self._inflight[body] = (self._coalesce_epoch, future)
        try:
            result = await self._run(op, body, ctx)
        except BaseException as error:
            if not future.done():
                future.set_exception(error)
                # The waiters consume it; nobody else should retrieve it.
                future.exception()
            raise
        finally:
            if self._inflight.get(body, (None, None))[1] is future:
                del self._inflight[body]
        future.set_result(result)
        return result

    async def _run(self, op: int, body: bytes,
                   ctx: Optional[_RequestContext]
                   ) -> Tuple[bytes, Optional[bytes]]:
        self._pending += 1
        self._inflight_gauge.inc()
        try:
            return await self._loop.run_in_executor(
                self._executor, self._execute, op, body, ctx
            )
        finally:
            self._pending -= 1
            self._inflight_gauge.inc(-1)

    def _execute(self, op: int, body: bytes,
                 ctx: Optional[_RequestContext]
                 ) -> Tuple[bytes, Optional[bytes]]:
        """Answer one frame on an executor thread, measuring if traced.

        Untraced (PR 7) requests take the bare dispatch — no span, no cost
        context, no new overhead.  Traced requests root a ``daemon.request``
        span *on this executor thread* (the loop thread's stack cannot hold
        a span across interleaved awaits) re-parented onto the loop-side
        span via ``trace.propagate``, and run the service work under a
        ``measure()`` context that the store/serve hooks feed.
        """
        if ctx is None:
            return self._dispatch(op, body), None
        wait_ms = round(1e3 * (time.perf_counter() - ctx.start), 3)
        with trace.propagate(ctx.parent):
            with trace.span("daemon.request", op=OP_NAMES[op],
                            request_id=ctx.request_id, wait_ms=wait_ms):
                with measure() as cost:
                    response = self._dispatch(op, body)
        ctx.cost = cost
        if not ctx.want_cost:
            return response, None
        cost_json = json.dumps(cost.as_dict(), sort_keys=True).encode("ascii")
        return response, cost_json

    def _dispatch(self, op: int, body: bytes) -> bytes:
        """Parse and answer one frame on an executor thread."""
        try:
            if op in (OP_IS_ALIAS, OP_LIST_ALIASES, OP_LIST_POINTS_TO,
                      OP_LIST_POINTED_BY):
                return self._answer_query(self._service, op, body)
            if op == OP_QUERY_AT:
                version, inner = protocol.decode_query_at(body)
                # A VersionUnavailableError (a ValueError) from as_of falls
                # through to the BAD_REQUEST handler below: an unanswerable
                # version is the peer's fault, not an internal error.
                snapshot = self._service.as_of(version)
                return self._answer_query(snapshot, inner[0], inner)
            if op == OP_VERSIONS:
                return protocol.encode_version_range(
                    self._service.version_floor, self._service.version
                )
            if op == OP_APPLY_DELTA:
                if not self.allow_deltas:
                    return protocol.encode_error(
                        ST_UNSUPPORTED,
                        "live deltas are disabled on this worker; compact the "
                        "base file and restart the fleet instead",
                    )
                ops = protocol.decode_apply_delta(body)
                invalidated = self._service.apply_delta(DeltaLog(ops))
                return protocol.encode_response(ST_OK, _U32.pack(invalidated))
            if op == OP_STATS:
                payload = json.dumps(self._stats_payload(), sort_keys=True)
                return protocol.encode_response(ST_OK, payload.encode("utf-8"))
            if op == OP_METRICS:
                # The /metrics HTTP body over the socket, for deployments
                # that expose no HTTP port (`repro-pestrie metrics --socket`).
                payload = _REGISTRY.to_prometheus().encode("utf-8")
                return protocol.encode_response(ST_OK, payload)
            return protocol.encode_error(ST_BAD_REQUEST,
                                         "unhandled opcode 0x%02x" % op)
        except ProtocolError as error:
            self._protocol_errors.inc()
            return protocol.encode_error(ST_BAD_REQUEST, str(error))
        except (IndexError, ValueError) as error:
            # Well-framed but unanswerable (operand out of range, delta on
            # a backend that cannot take one): the peer's fault, not ours.
            return protocol.encode_error(ST_BAD_REQUEST, str(error))
        except Exception as error:  # pragma: no cover - defensive
            return protocol.encode_error(
                ST_INTERNAL, "%s: %s" % (type(error).__name__, error)
            )

    def _answer_query(self, target, op: int, body: bytes) -> bytes:
        """Answer one query body against ``target`` (service or snapshot).

        Both :class:`~repro.serve.AliasService` and the pinned
        :class:`~repro.serve.AliasSnapshot` handles speak the same batch
        surface, so live and time-travel frames share this path.
        """
        if op == OP_IS_ALIAS:
            pairs = protocol.decode_is_alias(body)
            answers = target.is_alias_batch(pairs)
            self._queries.inc(len(pairs))
            return protocol.encode_bools(answers)
        operands = protocol.decode_list(body)
        rows = {
            OP_LIST_ALIASES: target.list_aliases_many,
            OP_LIST_POINTS_TO: target.points_to_batch,
            OP_LIST_POINTED_BY: target.pointed_by_batch,
        }[op](operands)
        self._queries.inc(len(operands))
        return protocol.encode_id_lists(rows)

    def _register_request(self, name: str,
                          ctx: Optional[_RequestContext]) -> int:
        """Track an accepted frame for /debug/requests until it answers."""
        self._request_seq += 1
        seq = self._request_seq
        self._requests[seq] = {
            "seq": seq,
            "op": name,
            "request_id": ctx.request_id if ctx is not None else "",
            "start": time.perf_counter(),
            "wall": time.time(),
        }
        return seq

    def _record(self, name: str, response: bytes, start: float,
                ctx: Optional[_RequestContext] = None) -> None:
        status = STATUS_NAMES.get(response[0], "internal") if response else "internal"
        _REGISTRY.counter("repro_daemon_requests_total", op=name, status=status).inc()
        seconds = time.perf_counter() - start
        _REGISTRY.histogram("repro_daemon_request_seconds", op=name).observe(
            seconds
        )
        if self._flight.enabled:
            cost = ctx.cost if ctx is not None else None
            self._flight.record(
                "request", op=name, status=status,
                seconds=round(seconds, 6),
                request_id=ctx.request_id if ctx is not None else "",
                cost=cost.as_dict() if cost is not None else None)

    def _stats_payload(self) -> dict:
        snapshot = self._service.stats()
        return {
            "n_pointers": self._service.n_pointers,
            "n_objects": self._service.n_objects,
            "version": self._service.version,
            "version_floor": self._service.version_floor,
            "counts": dict(snapshot.counts),
            "batched": dict(snapshot.batched),
            "cache_hits": snapshot.cache_hits,
            "cache_misses": snapshot.cache_misses,
            "cache_hit_rate": snapshot.cache_hit_rate,
            "latency_p50": dict(snapshot.latency_p50),
            "latency_p95": dict(snapshot.latency_p95),
            "total_queries": snapshot.total_queries,
        }

    # ------------------------------------------------------------------
    # HTTP (operations plane)
    # ------------------------------------------------------------------

    async def _on_http_connection(self, reader: asyncio.StreamReader,
                                  writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        self._writers.add(writer)
        try:
            status, content_type, payload = await self._http_response(reader)
            head = (
                "HTTP/1.1 %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: close\r\n\r\n" % (status, content_type, len(payload))
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except asyncio.CancelledError:
            raise
        except Exception:
            pass  # a broken scraper is not our problem
        finally:
            self._writers.discard(writer)
            self._tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _http_response(self, reader) -> Tuple[str, str, bytes]:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                asyncio.TimeoutError, ConnectionError):
            return "400 Bad Request", "text/plain; charset=utf-8", b"bad request\n"
        if len(head) > _HTTP_HEAD_LIMIT:
            return "431 Request Header Fields Too Large", \
                "text/plain; charset=utf-8", b"headers too large\n"
        request_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return "400 Bad Request", "text/plain; charset=utf-8", b"bad request\n"
        method, target = parts[0], parts[1]
        path, _, query = target.partition("?")
        if method != "GET":
            return "405 Method Not Allowed", "text/plain; charset=utf-8", \
                b"only GET is supported\n"
        if path == "/metrics":
            payload = _REGISTRY.to_prometheus().encode("utf-8")
            return "200 OK", "text/plain; version=0.0.4; charset=utf-8", payload
        if path == "/healthz":
            return "200 OK", "text/plain; charset=utf-8", b"ok\n"
        if path == "/stats":
            payload = await self._loop.run_in_executor(
                self._executor,
                lambda: json.dumps(self._stats_payload(), sort_keys=True).encode(),
            )
            return "200 OK", "application/json; charset=utf-8", payload
        if path == "/debug/events":
            limit = _query_int(query, "limit")
            payload = self._flight.dump_json(limit).encode("utf-8")
            return "200 OK", "application/json; charset=utf-8", payload
        if path == "/debug/requests":
            # Loop-confined read: this handler runs on the loop thread, the
            # only mutator of the registry, so the snapshot is consistent.
            now = time.perf_counter()
            rows = [
                {
                    "seq": entry["seq"],
                    "op": entry["op"],
                    "request_id": entry["request_id"],
                    "age_ms": round(1e3 * (now - entry["start"]), 3),
                    "wall": entry["wall"],
                }
                for entry in sorted(self._requests.values(),
                                    key=lambda item: item["seq"])
            ]
            payload = json.dumps(rows, sort_keys=True).encode("utf-8")
            return "200 OK", "application/json; charset=utf-8", payload
        if path == "/debug/profile":
            seconds = _query_float(query, "seconds", _DEFAULT_PROFILE_SECONDS)
            if seconds is None or seconds <= 0:
                return "400 Bad Request", "text/plain; charset=utf-8", \
                    b"seconds must be a positive number\n"
            # The sampler parks an executor thread for the window; the loop
            # keeps serving (including this endpoint's own /metrics peers).
            report = await self._loop.run_in_executor(
                self._executor, lambda: sample_profile(seconds))
            return "200 OK", "text/plain; charset=utf-8", \
                report.encode("utf-8")
        return "404 Not Found", "text/plain; charset=utf-8", \
            b"try /metrics, /healthz, /stats, /debug/events, " \
            b"/debug/requests, or /debug/profile?seconds=N\n"


def _query_params(query: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for pair in query.split("&"):
        if "=" in pair:
            key, _, value = pair.partition("=")
            params[key] = value
    return params


def _query_int(query: str, key: str) -> Optional[int]:
    raw = _query_params(query).get(key)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _query_float(query: str, key: str, default: float) -> Optional[float]:
    raw = _query_params(query).get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return None


class ThreadedDaemon:
    """An :class:`AliasDaemon` on its own thread with its own event loop.

    For embedding a daemon into synchronous code — tests, benchmarks, or a
    host application that is not asyncio-based.  ``start()`` blocks until
    the listeners accept; ``stop()`` drains and joins.
    """

    def __init__(self, daemon: AliasDaemon):
        import threading

        self._daemon = daemon
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._thread_main,
                                        name="repro-daemon-loop", daemon=True)

    @property
    def daemon(self) -> AliasDaemon:
        return self._daemon

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._async_main())
        except BaseException as error:  # pragma: no cover - startup failures
            self._error = error
            self._ready.set()

    async def _async_main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self._daemon.start()
        except BaseException as error:
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self._daemon.stop()

    def start(self, timeout: float = 10.0) -> "ThreadedDaemon":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("daemon did not start within %.1fs" % timeout)
        if self._error is not None:
            raise self._error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ThreadedDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
