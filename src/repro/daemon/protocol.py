"""The daemon wire protocol: length-prefixed binary frames.

One frame is a little-endian ``uint32`` byte length followed by that many
body bytes.  A request body is one opcode byte plus an opcode-specific
payload; a response body is one status byte plus a status-specific
payload.  Everything is fixed-width little-endian integers, so a batch of
Table 1 queries is one ``struct`` pack/unpack on either side — the wire
cost per query is a few bytes, and the service's batch fast path is paid
once per frame, not once per query.

Request opcodes
---------------
``PING``            empty payload; answers with an empty ``OK``.
``IS_ALIAS``        ``u32 n`` then ``n`` pairs ``(u32 p, u32 q)``;
                    answers ``n`` bytes, one ``0``/``1`` per pair.
``LIST_ALIASES``/``LIST_POINTS_TO``/``LIST_POINTED_BY``
                    ``u32 n`` then ``n`` operand ids; answers, per
                    operand, ``u32 k`` then ``k`` ids.
``APPLY_DELTA``     ``u32 n`` then ``n`` edits ``(u8 op, u32 p, u32 o)``
                    with op ``0``=insert, ``1``=delete; answers
                    ``u32 invalidated`` (cache entries dropped).
``STATS``           empty payload; answers a UTF-8 JSON document.
``VERSIONS``        empty payload; answers ``(u32 floor, u32 head)`` —
                    the service's answerable version range.
``QUERY_AT``        ``u32 version`` then a complete inner query body
                    (``IS_ALIAS`` or a list query); the answer is the
                    inner opcode's answer, computed against the pinned
                    snapshot at ``version``.  A version outside the
                    service's ``[floor, head]`` range answers
                    ``BAD_REQUEST``.
``TRACED``          the request-scoped observability extension (PR 9):
                    ``u8 flags, u8 id_len`` then ``id_len`` ASCII bytes of
                    client-minted request id, then a complete inner
                    request body (any opcode except another ``TRACED``).
                    The daemon tags its request span and flight-recorder
                    entry with the id.  With flag bit 0 (``WANT_COST``)
                    set, an ``OK`` answer is extended: ``u32 cost_len``
                    then ``cost_len`` bytes of ``QueryCost`` JSON precede
                    the inner payload.  Old clients never send ``TRACED``
                    and responses to unwrapped requests are unchanged —
                    the extension is invisible to PR 7 peers.
``METRICS``         empty payload; answers the process metrics registry
                    as Prometheus 0.0.4 text (the ``/metrics`` HTTP body,
                    for socket-only deployments).

Response statuses
-----------------
``OK``              payload is the opcode-specific answer.
``BAD_REQUEST``     unparseable frame or out-of-range operand; the
                    payload is a UTF-8 message.  The connection stays
                    usable — framing is intact, only this request failed.
``OVERLOADED``      admission control refused the request (the pending
                    queue is full); retry after backoff.
``UNSUPPORTED``     the operation is disabled in this deployment
                    (``APPLY_DELTA`` on a multi-process worker).
``INTERNAL``        the handler raised; the payload names the error.

Hostile input never crashes the peer: every decode here bounds-checks the
declared counts against the actual byte length and raises
:class:`ProtocolError`, which the daemon answers with ``BAD_REQUEST`` and
the client surfaces as :class:`~repro.clients.daemon.DaemonError`.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

_U32 = struct.Struct("<I")
_HEADER = struct.Struct("<I")

#: Hard ceiling on one frame's body; a longer declared length is treated
#: as a framing error (the stream cannot be trusted past it).
MAX_FRAME_BYTES = 8 * 1024 * 1024

# --- request opcodes ---------------------------------------------------
OP_PING = 0x01
OP_IS_ALIAS = 0x02
OP_LIST_ALIASES = 0x03
OP_LIST_POINTS_TO = 0x04
OP_LIST_POINTED_BY = 0x05
OP_APPLY_DELTA = 0x06
OP_STATS = 0x07
OP_VERSIONS = 0x08
OP_QUERY_AT = 0x09
OP_TRACED = 0x0A
OP_METRICS = 0x0B

#: Human-readable opcode names (metric labels, error messages).
OP_NAMES = {
    OP_PING: "ping",
    OP_IS_ALIAS: "is_alias",
    OP_LIST_ALIASES: "list_aliases",
    OP_LIST_POINTS_TO: "list_points_to",
    OP_LIST_POINTED_BY: "list_pointed_by",
    OP_APPLY_DELTA: "apply_delta",
    OP_STATS: "stats",
    OP_VERSIONS: "versions",
    OP_QUERY_AT: "query_at",
    OP_TRACED: "traced",
    OP_METRICS: "metrics",
}

#: ``TRACED`` flag bits.
TRACE_WANT_COST = 0x01

#: Ceiling on a client-minted request id (ASCII bytes on the wire).
MAX_REQUEST_ID_BYTES = 64

#: The read-only opcodes eligible for in-flight coalescing.  A versioned
#: query is pure (its answer is fixed by the version stamp in its body),
#: so identical QUERY_AT frames coalesce like any other read.
QUERY_OPS = frozenset(
    (OP_IS_ALIAS, OP_LIST_ALIASES, OP_LIST_POINTS_TO, OP_LIST_POINTED_BY,
     OP_QUERY_AT)
)

# --- response statuses -------------------------------------------------
ST_OK = 0x00
ST_BAD_REQUEST = 0x01
ST_OVERLOADED = 0x02
ST_UNSUPPORTED = 0x03
ST_INTERNAL = 0x04

STATUS_NAMES = {
    ST_OK: "ok",
    ST_BAD_REQUEST: "bad_request",
    ST_OVERLOADED: "overloaded",
    ST_UNSUPPORTED: "unsupported",
    ST_INTERNAL: "internal",
}

#: Delta edit kinds on the wire.
EDIT_INSERT = 0
EDIT_DELETE = 1


class ProtocolError(ValueError):
    """A frame that cannot be decoded (bad length, opcode, or payload)."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def frame(body: bytes) -> bytes:
    """Prefix ``body`` with its little-endian ``uint32`` length."""
    if not body:
        raise ProtocolError("cannot frame an empty body")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame body of %d bytes exceeds the %d-byte limit"
            % (len(body), MAX_FRAME_BYTES)
        )
    return _HEADER.pack(len(body)) + body


def body_length(prefix: bytes, limit: int = MAX_FRAME_BYTES) -> int:
    """Decode and validate a 4-byte length prefix."""
    if len(prefix) != 4:
        raise ProtocolError("truncated length prefix (%d bytes)" % len(prefix))
    length = _HEADER.unpack(prefix)[0]
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > limit:
        raise ProtocolError(
            "declared frame length %d exceeds the %d-byte limit" % (length, limit)
        )
    return length


# ----------------------------------------------------------------------
# Request encoding (client side)
# ----------------------------------------------------------------------

def encode_ping() -> bytes:
    return bytes((OP_PING,))


def encode_stats() -> bytes:
    return bytes((OP_STATS,))


def encode_versions() -> bytes:
    return bytes((OP_VERSIONS,))


def encode_metrics() -> bytes:
    return bytes((OP_METRICS,))


def encode_traced(request_id: str, inner: bytes,
                  want_cost: bool = False) -> bytes:
    """Wrap an already-encoded request body in a ``TRACED`` frame."""
    try:
        encoded_id = request_id.encode("ascii")
    except UnicodeEncodeError:
        raise ProtocolError("request id must be ASCII: %r" % (request_id,))
    if not encoded_id or len(encoded_id) > MAX_REQUEST_ID_BYTES:
        raise ProtocolError(
            "request id must be 1-%d bytes, got %d"
            % (MAX_REQUEST_ID_BYTES, len(encoded_id))
        )
    if not inner:
        raise ProtocolError("traced frame wraps an empty body")
    if inner[0] == OP_TRACED:
        raise ProtocolError("traced frames do not nest")
    flags = TRACE_WANT_COST if want_cost else 0
    return (bytes((OP_TRACED, flags, len(encoded_id))) + encoded_id + inner)


def encode_query_at(version: int, inner: bytes) -> bytes:
    """Wrap an already-encoded query body in a version-pinned frame."""
    if not (0 <= version <= 0xFFFFFFFF):
        raise ProtocolError("version %r does not fit in a u32" % (version,))
    if not inner or inner[0] not in (OP_IS_ALIAS, OP_LIST_ALIASES,
                                     OP_LIST_POINTS_TO, OP_LIST_POINTED_BY):
        raise ProtocolError("query_at carries a non-query inner body")
    return bytes((OP_QUERY_AT,)) + _U32.pack(version) + inner


def encode_is_alias(pairs: Sequence[Tuple[int, int]]) -> bytes:
    flat: List[int] = []
    for p, q in pairs:
        flat.append(p)
        flat.append(q)
    return (bytes((OP_IS_ALIAS,)) + _U32.pack(len(pairs))
            + struct.pack("<%dI" % len(flat), *flat))


def encode_list(op: int, operands: Sequence[int]) -> bytes:
    if op not in (OP_LIST_ALIASES, OP_LIST_POINTS_TO, OP_LIST_POINTED_BY):
        raise ProtocolError("opcode 0x%02x is not a list query" % op)
    return (bytes((op,)) + _U32.pack(len(operands))
            + struct.pack("<%dI" % len(operands), *operands))


def encode_apply_delta(ops: Sequence[Tuple[str, int, int]]) -> bytes:
    """Encode a :class:`~repro.delta.DeltaLog`-style op sequence."""
    parts = [bytes((OP_APPLY_DELTA,)), _U32.pack(len(ops))]
    for op, pointer, obj in ops:
        kind = EDIT_INSERT if op == "+" else EDIT_DELETE
        if op not in ("+", "-"):
            raise ProtocolError("unknown delta op %r" % (op,))
        parts.append(struct.pack("<BII", kind, pointer, obj))
    return b"".join(parts)


# ----------------------------------------------------------------------
# Request decoding (server side)
# ----------------------------------------------------------------------

def request_op(body: bytes) -> int:
    if not body:
        raise ProtocolError("empty request body")
    op = body[0]
    if op not in OP_NAMES:
        raise ProtocolError("unknown opcode 0x%02x" % op)
    return op


def _count(body: bytes, per_item: int, label: str) -> int:
    """The ``u32`` item count at offset 1, validated against the length."""
    if len(body) < 5:
        raise ProtocolError("truncated %s request (%d bytes)" % (label, len(body)))
    count = _U32.unpack_from(body, 1)[0]
    expected = 5 + count * per_item
    if len(body) != expected:
        raise ProtocolError(
            "%s request declares %d items (%d bytes) but carries %d bytes"
            % (label, count, expected, len(body))
        )
    return count


def decode_is_alias(body: bytes) -> List[Tuple[int, int]]:
    count = _count(body, 8, "is_alias")
    flat = struct.unpack_from("<%dI" % (2 * count), body, 5)
    return [(flat[i], flat[i + 1]) for i in range(0, 2 * count, 2)]


def decode_list(body: bytes) -> List[int]:
    count = _count(body, 4, OP_NAMES[body[0]])
    return list(struct.unpack_from("<%dI" % count, body, 5))


def decode_query_at(body: bytes) -> Tuple[int, bytes]:
    """``(version, inner_body)`` of a ``QUERY_AT`` request.

    The inner body is re-validated by the inner opcode's own decoder; here
    only the wrapper is checked — enough bytes for the version word, and an
    inner opcode that is actually a query (a nested ``QUERY_AT`` or a write
    op is a protocol error, not a recursion vector).
    """
    if len(body) < 6:
        raise ProtocolError("truncated query_at request (%d bytes)" % len(body))
    version = _U32.unpack_from(body, 1)[0]
    inner = body[5:]
    if inner[0] not in (OP_IS_ALIAS, OP_LIST_ALIASES, OP_LIST_POINTS_TO,
                        OP_LIST_POINTED_BY):
        raise ProtocolError(
            "query_at wraps opcode 0x%02x, which is not a plain query" % inner[0]
        )
    return version, inner


def decode_traced(body: bytes) -> Tuple[str, bool, bytes]:
    """``(request_id, want_cost, inner_body)`` of a ``TRACED`` request.

    The inner body is re-validated by its own opcode's decoder; here only
    the wrapper is checked.  Unknown flag bits are a protocol error so a
    future flag cannot be silently half-honoured.
    """
    if len(body) < 4:
        raise ProtocolError("truncated traced request (%d bytes)" % len(body))
    flags, id_len = body[1], body[2]
    if flags & ~TRACE_WANT_COST:
        raise ProtocolError("unknown traced flags 0x%02x" % flags)
    if not 1 <= id_len <= MAX_REQUEST_ID_BYTES:
        raise ProtocolError("traced id length %d out of range" % id_len)
    if len(body) < 3 + id_len + 1:
        raise ProtocolError("traced request truncated inside the id or body")
    raw_id = body[3:3 + id_len]
    try:
        request_id = raw_id.decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError("traced request id is not ASCII")
    inner = body[3 + id_len:]
    if inner[0] == OP_TRACED:
        raise ProtocolError("traced frames do not nest")
    return request_id, bool(flags & TRACE_WANT_COST), inner


def decode_apply_delta(body: bytes) -> List[Tuple[str, int, int]]:
    count = _count(body, 9, "apply_delta")
    ops: List[Tuple[str, int, int]] = []
    offset = 5
    for _ in range(count):
        kind, pointer, obj = struct.unpack_from("<BII", body, offset)
        if kind not in (EDIT_INSERT, EDIT_DELETE):
            raise ProtocolError("unknown delta edit kind %d" % kind)
        ops.append(("+" if kind == EDIT_INSERT else "-", pointer, obj))
        offset += 9
    return ops


# ----------------------------------------------------------------------
# Response encoding / decoding
# ----------------------------------------------------------------------

def encode_response(status: int, payload: bytes = b"") -> bytes:
    return bytes((status,)) + payload


def encode_error(status: int, message: str) -> bytes:
    return encode_response(status, message.encode("utf-8", "replace"))


def encode_bools(answers: Sequence[bool]) -> bytes:
    return encode_response(ST_OK, bytes(1 if answer else 0 for answer in answers))


def encode_id_lists(rows: Sequence[Sequence[int]]) -> bytes:
    parts = [bytes((ST_OK,))]
    for row in rows:
        parts.append(_U32.pack(len(row)))
        parts.append(struct.pack("<%dI" % len(row), *row))
    return b"".join(parts)


def split_response(body: bytes) -> Tuple[int, bytes]:
    """``(status, payload)`` of a response body."""
    if not body:
        raise ProtocolError("empty response body")
    status = body[0]
    if status not in STATUS_NAMES:
        raise ProtocolError("unknown response status 0x%02x" % status)
    return status, body[1:]


def decode_bools(payload: bytes, expected: int) -> List[bool]:
    if len(payload) != expected:
        raise ProtocolError(
            "is_alias response carries %d answers, expected %d"
            % (len(payload), expected)
        )
    return [byte != 0 for byte in payload]


def decode_id_lists(payload: bytes, expected: int) -> List[List[int]]:
    rows: List[List[int]] = []
    offset = 0
    for _ in range(expected):
        if offset + 4 > len(payload):
            raise ProtocolError("truncated list response")
        count = _U32.unpack_from(payload, offset)[0]
        offset += 4
        end = offset + 4 * count
        if end > len(payload):
            raise ProtocolError(
                "list response row declares %d ids past the payload end" % count
            )
        rows.append(list(struct.unpack_from("<%dI" % count, payload, offset)))
        offset = end
    if offset != len(payload):
        raise ProtocolError(
            "%d trailing bytes after the last list row" % (len(payload) - offset)
        )
    return rows


def attach_cost(response: bytes, cost_json: bytes) -> bytes:
    """Extend an ``OK`` response with a cost preamble (``TRACED`` + ``WANT_COST``).

    The extended body is ``status | u32 cost_len | cost JSON | payload``.
    Non-``OK`` responses pass through untouched: their payload is an error
    message whose shape old and new clients alike must keep parsing.
    """
    status, payload = split_response(response)
    if status != ST_OK:
        return response
    return bytes((status,)) + _U32.pack(len(cost_json)) + cost_json + payload


def split_cost_response(body: bytes) -> Tuple[int, bytes, bytes]:
    """``(status, cost_json, payload)`` of a cost-extended response.

    Only meaningful for responses to ``TRACED`` requests with
    ``WANT_COST`` set; non-``OK`` statuses carry no cost preamble.
    """
    status, payload = split_response(body)
    if status != ST_OK:
        return status, b"", payload
    if len(payload) < 4:
        raise ProtocolError("cost-extended response lacks a length word")
    cost_len = _U32.unpack_from(payload, 0)[0]
    if 4 + cost_len > len(payload):
        raise ProtocolError(
            "cost preamble declares %d bytes past the payload end" % cost_len
        )
    return status, payload[4:4 + cost_len], payload[4 + cost_len:]


def decode_u32(payload: bytes) -> int:
    if len(payload) != 4:
        raise ProtocolError("expected a u32 payload, got %d bytes" % len(payload))
    return _U32.unpack(payload)[0]


def encode_version_range(floor: int, head: int) -> bytes:
    return encode_response(ST_OK, struct.pack("<II", floor, head))


def decode_version_range(payload: bytes) -> Tuple[int, int]:
    """``(floor, head)`` of a ``VERSIONS`` response."""
    if len(payload) != 8:
        raise ProtocolError(
            "versions response carries %d bytes, expected 8" % len(payload)
        )
    floor, head = struct.unpack("<II", payload)
    return floor, head
