"""Network tier: serve the persisted index to out-of-process clients.

:class:`AliasDaemon` is an asyncio front door over
:class:`~repro.serve.AliasService` — a unix-socket binary batch protocol
for the four Table 1 queries plus hot deltas, and a minimal HTTP plane
for ``/metrics``, ``/healthz`` and ``/stats``.  :mod:`.protocol` defines
the wire format, :mod:`.workers` the blocking single-process and pre-fork
entry points, and :class:`ThreadedDaemon` embeds a daemon into
synchronous code.  The matching client is
:class:`repro.clients.DaemonClient`.
"""

from .protocol import MAX_FRAME_BYTES, ProtocolError
from .server import DEFAULT_MAX_PENDING, AliasDaemon, ThreadedDaemon
from .workers import run_daemon, run_workers

__all__ = [
    "AliasDaemon",
    "ThreadedDaemon",
    "ProtocolError",
    "MAX_FRAME_BYTES",
    "DEFAULT_MAX_PENDING",
    "run_daemon",
    "run_workers",
]
