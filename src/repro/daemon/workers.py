"""Process-level daemon entry points: single-process and pre-fork serving.

The pre-fork mode is the payoff of the mmap storage layer: the parent
binds the unix socket and opens the service **lazily** (headers only,
sections still unmaterialised), then forks N workers that all inherit the
listening socket and the mapped file.  The kernel load-balances
``accept()`` across the workers, and the mapped pages — the persisted
index itself — are shared read-only between every process, so N workers
cost N python heaps but only one copy of the index bytes.  This is the
"built once, queried by many independent clients" deployment the paper's
economics assume.

The one semantic narrowing: workers refuse ``APPLY_DELTA`` with
``UNSUPPORTED``.  A delta applied inside one forked worker would never
propagate to its siblings (the overlay lives in the python heap, not the
shared mapping), and a fleet where 1/N of answers reflect an edit is
worse than one that says so.  Live deltas need the single-process mode;
fleets pick up edits by compacting the base file and restarting.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import sys
from typing import List, Optional, Sequence

from ..obs import get_flight_recorder, install_signal_dump
from .server import DEFAULT_MAX_PENDING, AliasDaemon

#: accept() backlog for the shared listening socket.
_BACKLOG = 128


def _serve_with_flight(daemon: AliasDaemon) -> None:
    """Run a daemon to completion with incident capture wired up.

    ``SIGUSR2`` dumps the flight recorder to stderr at any time; an
    unexpected crash of the serve loop dumps it on the way down — the
    ring's whole purpose is to still exist when the process doesn't.
    """
    install_signal_dump()
    try:
        asyncio.run(daemon.serve_forever(install_signal_handlers=True))
    except KeyboardInterrupt:
        raise
    except BaseException as error:
        flight = get_flight_recorder()
        flight.record("crash", error="%s: %s" % (type(error).__name__, error),
                      pid=os.getpid())
        flight.dump_to(reason="daemon crash: %s" % type(error).__name__)
        raise


def _bind_unix_socket(socket_path: str) -> socket.socket:
    """Bind and listen on a fresh unix socket, replacing a stale file."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        try:
            os.unlink(socket_path)
        except FileNotFoundError:
            pass
        sock.bind(socket_path)
        sock.listen(_BACKLOG)
        sock.setblocking(False)
    except BaseException:
        sock.close()
        raise
    return sock


def run_daemon(service, socket_path: str, http_port: Optional[int] = None,
               http_host: str = "127.0.0.1", *,
               max_pending: int = DEFAULT_MAX_PENDING,
               allow_deltas: bool = True,
               close_service: bool = True) -> int:
    """Serve ``service`` on ``socket_path`` until SIGINT/SIGTERM.

    The blocking single-process entry point behind ``repro-pestrie
    daemon``.  Returns a process exit code.
    """
    daemon = AliasDaemon(
        service,
        socket_path=socket_path,
        http_host=http_host,
        http_port=http_port,
        max_pending=max_pending,
        allow_deltas=allow_deltas,
        close_service=close_service,
    )
    _serve_with_flight(daemon)
    return 0


def run_workers(paths: Sequence[str], socket_path: str, workers: int,
                http_port: Optional[int] = None,
                http_host: str = "127.0.0.1", *,
                mode: str = "ptlist",
                cache_size: int = 4096,
                max_pending: int = DEFAULT_MAX_PENDING,
                status_stream=None) -> int:
    """Pre-fork ``workers`` processes over one socket and one mapped index.

    The parent binds the socket and opens the files lazily (mmap, headers
    only), forks, then supervises: SIGINT/SIGTERM fan out to the workers,
    and one worker dying unexpectedly takes the fleet down (a half-dead
    fleet silently serving at reduced capacity is an outage that hides).
    Each worker gets its own HTTP port (``http_port + slot``) so every
    process can be scraped.  Returns the worst worker exit code.
    """
    from ..serve import AliasService

    if workers < 1:
        raise ValueError("worker count must be at least 1")
    stream = status_stream if status_stream is not None else sys.stderr
    sock = _bind_unix_socket(socket_path)
    try:
        # Lazy open: only headers are decoded here, so the fork below
        # duplicates a tiny heap and the mapped index pages stay shared.
        service = AliasService.from_files(list(paths), mode=mode, lazy=True,
                                          cache_size=cache_size)
    except BaseException:
        sock.close()
        os.unlink(socket_path)
        raise

    pids: List[int] = []
    for slot in range(workers):
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                daemon = AliasDaemon(
                    service,
                    listen_socket=sock,
                    http_host=http_host,
                    http_port=None if http_port is None else http_port + slot,
                    max_pending=max_pending,
                    allow_deltas=False,
                    close_service=True,
                    worker_slot=slot,
                )
                _serve_with_flight(daemon)
                status = 0
            except KeyboardInterrupt:
                status = 0
            finally:
                # Never fall back into the parent's stack: a worker exits
                # here no matter what serve_forever did.
                os._exit(status)
        pids.append(pid)
        get_flight_recorder().record("worker_spawn", slot=slot, pid=pid)

    sock.close()
    print("daemon: %d workers on %s (pids %s)"
          % (workers, socket_path, " ".join(str(pid) for pid in pids)),
          file=stream, flush=True)

    def _fan_out(signum, _frame):
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    previous = {
        signum: signal.signal(signum, _fan_out)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    worst = 0
    try:
        remaining = set(pids)
        while remaining:
            try:
                pid, status = os.waitpid(-1, 0)
            except InterruptedError:
                continue
            except ChildProcessError:
                break
            if pid not in remaining:
                continue
            remaining.discard(pid)
            code = os.waitstatus_to_exitcode(status)
            code = 128 - code if code < 0 else code  # killed by signal -N
            worst = max(worst, code)
            get_flight_recorder().record("worker_exit", pid=pid, code=code)
            if code != 0 and remaining:
                # One worker crashed: bring the rest down rather than
                # serving at silent fractional capacity.
                print("daemon: worker %d exited with %d; stopping fleet"
                      % (pid, code), file=stream, flush=True)
                _fan_out(signal.SIGTERM, None)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        try:
            os.unlink(socket_path)
        except OSError:
            pass
    return worst
