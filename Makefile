# Canonical targets for the Pestrie reproduction.

PYTHON ?= python3
RUN = PYTHONPATH=src:$$PYTHONPATH $(PYTHON)

.PHONY: install test fuzz fuzz-v4 fuzz-versions bench bench-smoke bench-scale-smoke daemon-smoke metrics-smoke obs-smoke examples results clean

install:
	pip install -e . --no-build-isolation

# The default test run includes a fast fuzz smoke pass; `make fuzz` is the
# full bounded sweep (still seeded and deterministic).
test:
	$(RUN) -m pytest tests/
	$(RUN) -m repro.core.fuzz --iterations 100 --quiet

fuzz:
	$(RUN) -m repro.core.fuzz --iterations 600

# Focused sweep over the zero-copy PESTRIE4 layout: every case checks the
# flat engine against the eager oracle and throws seeded corruption at the
# flat sections (any effective mutation must die as CorruptFileError).
fuzz-v4:
	$(RUN) -m repro.core.fuzz --iterations 300 --versions 4

# Versioned-tail sweep: every PESTRIE3/4 case grows an epoch-stamped
# PESDELT2 chain; corrupted or truncated epoch stamps must die as
# CorruptFileError or decode to a clean prefix — never a wrong as_of.
fuzz-versions:
	$(RUN) -m repro.core.fuzz --iterations 300 --versions 3,4 --versioned-tails

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny-workload run of the service throughput benchmark — a CI guard that
# keeps the serve layer and its batch-beats-single invariant from rotting.
bench-smoke:
	BENCH_SMOKE=1 $(RUN) -m pytest benchmarks/bench_service_throughput.py benchmarks/bench_cold_start.py benchmarks/bench_version_query.py -q

# Tiny-workload run of the daemon tier: concurrent socket clients vs the
# in-process baseline, plus hot apply_delta under load with a differential
# check — guards the network tier's throughput bar and its zero-wrong-answer
# reload invariant.
daemon-smoke:
	BENCH_SMOKE=1 $(RUN) -m pytest benchmarks/bench_daemon_throughput.py -q

# Scale-growth guard: staged encode up to 10^5 pointers must stay
# near-linear in the fact count, and a 2-process parallel encode must be
# byte-identical to the serial bytes.
bench-scale-smoke:
	cd benchmarks && BENCH_SMOKE=1 PYTHONPATH=../src:$$PYTHONPATH $(PYTHON) bench_scale_growth.py --quick

# Observability guard: boot a daemon, drive traced traffic, assert one
# request yields one connected span tree, the flight recorder dumps real
# events, and the always-on recorder costs <5% throughput.
obs-smoke:
	BENCH_SMOKE=1 $(RUN) -m pytest benchmarks/bench_obs_flight.py -q

# End-to-end telemetry guard: run the pipeline, dump the metrics registry,
# fail if any catalogued family is missing or an exercised one has no data.
metrics-smoke:
	cd benchmarks && BENCH_SMOKE=1 PYTHONPATH=../src:$$PYTHONPATH $(PYTHON) bench_service_throughput.py --emit-metrics

# Regenerate every paper-style table into benchmarks/results/.
results: bench
	@ls benchmarks/results/

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(RUN) $$script || exit 1; \
	done

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
