# Canonical targets for the Pestrie reproduction.

PYTHON ?= python3

.PHONY: install test bench examples results clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper-style table into benchmarks/results/.
results: bench
	@ls benchmarks/results/

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
